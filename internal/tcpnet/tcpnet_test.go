package tcpnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rbay/internal/core"
	"rbay/internal/ids"
	"rbay/internal/pastry"
	"rbay/internal/transport"
)

func addr(site, host string) transport.Addr { return transport.Addr{Site: site, Host: host} }

// collect is a concurrency-safe message sink.
type collect struct {
	mu   sync.Mutex
	msgs []any
}

func (c *collect) add(m any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
}

func (c *collect) snapshot() []any {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]any(nil), c.msgs...)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never met")
}

func TestLocalAndRemoteDelivery(t *testing.T) {
	core.RegisterWire()
	var table map[transport.Addr]string
	resolver := func(a transport.Addr) (string, error) { return StaticResolver(table)(a) }

	n1, err := Listen("127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := Listen("127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	table = map[transport.Addr]string{
		addr("a", "h1"): n1.ListenAddr(),
		addr("a", "h2"): n1.ListenAddr(), // same process
		addr("b", "h3"): n2.ListenAddr(),
	}

	var got1, got2, got3 collect
	e1, _ := n1.NewEndpoint(addr("a", "h1"), func(_ transport.Addr, m any) { got1.add(m) })
	if _, err := n1.NewEndpoint(addr("a", "h1"), nil); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
	n1.NewEndpoint(addr("a", "h2"), func(_ transport.Addr, m any) { got2.add(m) })
	n2.NewEndpoint(addr("b", "h3"), func(from transport.Addr, m any) { got3.add(m) })

	// Local fast path (same Network).
	if err := e1.Send(addr("a", "h2"), "local"); err != nil {
		t.Fatal(err)
	}
	// Remote over TCP with a struct payload.
	if err := e1.Send(addr("b", "h3"), pastry.Entry{ID: ids.HashOf("x"), Addr: addr("a", "h1")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(got2.snapshot()) == 1 && len(got3.snapshot()) == 1 })
	if got2.snapshot()[0] != "local" {
		t.Errorf("local payload = %v", got2.snapshot()[0])
	}
	entry, ok := got3.snapshot()[0].(pastry.Entry)
	if !ok || entry.Addr != addr("a", "h1") {
		t.Errorf("remote payload = %#v", got3.snapshot()[0])
	}

	// Unknown address fails synchronously.
	if err := e1.Send(addr("z", "nowhere"), 1); err == nil {
		t.Error("send to unresolvable address should fail")
	}
}

func TestTimerAndCancel(t *testing.T) {
	n, err := Listen("127.0.0.1:0", StaticResolver(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ep, _ := n.NewEndpoint(addr("a", "h"), func(transport.Addr, any) {})
	var mu sync.Mutex
	fired := 0
	ep.After(20*time.Millisecond, func() { mu.Lock(); fired++; mu.Unlock() })
	cancel := ep.After(20*time.Millisecond, func() { mu.Lock(); fired += 10; mu.Unlock() })
	if !cancel() {
		t.Error("cancel should succeed")
	}
	if cancel() {
		t.Error("double cancel")
	}
	time.Sleep(100 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

// TestPastryOverTCP runs a real multi-endpoint Pastry overlay over
// loopback TCP — the same protocol code the simulator runs.
func TestPastryOverTCP(t *testing.T) {
	pastry.RegisterWire()
	table := map[transport.Addr]string{}
	resolver := func(a transport.Addr) (string, error) { return StaticResolver(table)(a) }

	// Two processes (Networks), several nodes each.
	n1, err := Listen("127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := Listen("127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()

	var nodes []*pastry.Node
	for i := 0; i < 6; i++ {
		a := addr("east", fmt.Sprintf("n%d", i))
		table[a] = n1.ListenAddr()
		node, err := pastry.NewNode(n1, a, pastry.Config{LeafHalf: 4})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	for i := 0; i < 6; i++ {
		a := addr("west", fmt.Sprintf("n%d", i))
		table[a] = n2.ListenAddr()
		node, err := pastry.NewNode(n2, a, pastry.Config{LeafHalf: 4})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}

	// Join sequentially through the first node.
	nodes[0].BootstrapAlone()
	for _, n := range nodes[1:] {
		done := make(chan struct{})
		seed := nodes[0].Addr()
		// Joins run on the dispatch goroutine; drive from outside via a
		// helper endpoint? JoinGlobal is safe to call pre-traffic.
		if err := n.JoinGlobal(seed, func() { close(done) }); err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("node %v join timed out", n.Addr())
		}
	}

	// Route a request and get a reply across process boundaries.
	for _, n := range nodes {
		n.SetRequestHandler(func(n *pastry.Node, from pastry.Entry, body any) any {
			return "pong:" + n.ID().Short()
		})
	}
	reply := make(chan string, 1)
	key := ids.HashOf("cross-process-key")
	err = nodes[11].RouteRequest(pastry.GlobalScope, key, "ping", func(r any, from pastry.Entry, err error) {
		if err != nil {
			reply <- "err:" + err.Error()
			return
		}
		reply <- r.(string)
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-reply:
		if len(got) < 5 || got[:5] != "pong:" {
			t.Fatalf("reply = %q", got)
		}
		// The responder must be the globally numerically closest node.
		best := nodes[0]
		for _, n := range nodes[1:] {
			if n.ID().CloserToThan(key, best.ID()) {
				best = n
			}
		}
		if got[5:] != best.ID().Short() {
			t.Fatalf("reply from %s, want closest %s", got[5:], best.ID().Short())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("routed request timed out")
	}
}

package tcpnet

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"rbay/internal/transport"
)

// TestBatchCoalescing: a burst of small sends inside one flush window must
// arrive complete and in order, and the stats must show that they traveled
// coalesced into batch frames rather than one frame each.
func TestBatchCoalescing(t *testing.T) {
	table := map[transport.Addr]string{}
	resolver := func(a transport.Addr) (string, error) { return StaticResolver(table)(a) }

	n1, err := ListenConfig("127.0.0.1:0", resolver, Config{FlushInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := Listen("127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	table[addr("a", "h1")] = n1.ListenAddr()
	table[addr("b", "h2")] = n2.ListenAddr()

	e1, _ := n1.NewEndpoint(addr("a", "h1"), func(transport.Addr, any) {})
	var got collect
	n2.NewEndpoint(addr("b", "h2"), func(_ transport.Addr, m any) { got.add(m) })

	const burst = 50
	for i := 0; i < burst; i++ {
		if err := e1.Send(addr("b", "h2"), i); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(got.snapshot()) == burst })
	for i, m := range got.snapshot() {
		if m != i {
			t.Fatalf("message %d = %v (out of order or corrupt)", i, m)
		}
	}
	s := n1.Stats()
	if s.BatchFrames == 0 || s.BatchedMessages < 2 {
		t.Errorf("burst should coalesce into batch frames, stats %+v", s)
	}
}

// TestBatchSizeCapFlush: crossing BatchBytes must flush synchronously and
// keep ordering, including messages too large to batch at all.
func TestBatchSizeCapFlush(t *testing.T) {
	table := map[transport.Addr]string{}
	resolver := func(a transport.Addr) (string, error) { return StaticResolver(table)(a) }

	n1, err := ListenConfig("127.0.0.1:0", resolver, Config{
		FlushInterval: 50 * time.Millisecond,
		BatchBytes:    512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := Listen("127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	table[addr("a", "h1")] = n1.ListenAddr()
	table[addr("b", "h2")] = n2.ListenAddr()

	e1, _ := n1.NewEndpoint(addr("a", "h1"), func(transport.Addr, any) {})
	var got collect
	n2.NewEndpoint(addr("b", "h2"), func(_ transport.Addr, m any) { got.add(m) })

	// Interleave small messages with ones larger than the whole batch cap.
	var want []any
	for i := 0; i < 10; i++ {
		small := fmt.Sprintf("s%02d-%s", i, strings.Repeat("x", 100))
		huge := fmt.Sprintf("h%02d-%s", i, strings.Repeat("y", 2000))
		for _, m := range []string{small, huge} {
			if err := e1.Send(addr("b", "h2"), m); err != nil {
				t.Fatal(err)
			}
			want = append(want, m)
		}
	}
	waitFor(t, func() bool { return len(got.snapshot()) == len(want) })
	snap := got.snapshot()
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("message %d = %.20v..., want %.20v...", i, snap[i], want[i])
		}
	}
}

// TestUnregisteredPayloadFailsWithoutKillingConn: an unencodable payload
// is the caller's bug; it must error synchronously and leave the cached
// connection healthy for the next (valid) send.
func TestUnregisteredPayloadFailsWithoutKillingConn(t *testing.T) {
	table := map[transport.Addr]string{}
	resolver := func(a transport.Addr) (string, error) { return StaticResolver(table)(a) }

	n1, err := Listen("127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := Listen("127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	table[addr("a", "h1")] = n1.ListenAddr()
	table[addr("b", "h2")] = n2.ListenAddr()

	e1, _ := n1.NewEndpoint(addr("a", "h1"), func(transport.Addr, any) {})
	var got collect
	n2.NewEndpoint(addr("b", "h2"), func(_ transport.Addr, m any) { got.add(m) })

	if err := e1.Send(addr("b", "h2"), "warm-up"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(got.snapshot()) == 1 })
	drops := n1.Stats().ConnDrops

	type notRegistered struct{ X int }
	if err := e1.Send(addr("b", "h2"), notRegistered{1}); err == nil {
		t.Fatal("unregistered payload should fail to encode")
	}
	if err := e1.Send(addr("b", "h2"), "still-works"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(got.snapshot()) == 2 })
	if n1.Stats().ConnDrops != drops {
		t.Errorf("encode failure must not retire the connection (drops %d -> %d)",
			drops, n1.Stats().ConnDrops)
	}
}

package tcpnet

import (
	"net"
	"sync"
	"testing"
	"time"

	"rbay/internal/pastry"
	"rbay/internal/transport"
)

// plantConn caches a pre-built connection in n, as if it had been dialed
// earlier (no read loop, no heartbeat — the test controls its fate).
func plantConn(n *Network, hostport string, c net.Conn, peers ...transport.Addr) *clientConn {
	cc := n.newClientConn(hostport, c)
	for _, a := range peers {
		cc.track(a)
	}
	n.mu.Lock()
	n.conns[hostport] = cc
	n.mu.Unlock()
	return cc
}

// TestSendRedialsStaleConn reproduces the stale-connection bug: a cached
// conn whose socket has died must not poison the next Send. The send path
// has to drop it, redial, and deliver within the same call. Batching is
// disabled so the write error surfaces synchronously inside Send.
func TestSendRedialsStaleConn(t *testing.T) {
	table := map[transport.Addr]string{}
	resolver := func(a transport.Addr) (string, error) { return StaticResolver(table)(a) }

	n1, err := ListenConfig("127.0.0.1:0", resolver, Config{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := Listen("127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	table[addr("a", "h1")] = n1.ListenAddr()
	table[addr("b", "h2")] = n2.ListenAddr()

	e1, _ := n1.NewEndpoint(addr("a", "h1"), func(transport.Addr, any) {})
	var got collect
	n2.NewEndpoint(addr("b", "h2"), func(_ transport.Addr, m any) { got.add(m) })

	// Plant a cached conn whose socket is already dead: every write on it
	// fails, exactly like a conn left over from before a peer restart.
	c, err := net.Dial("tcp", n2.ListenAddr())
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	plantConn(n1, n2.ListenAddr(), c)

	if err := e1.Send(addr("b", "h2"), "after-restart"); err != nil {
		t.Fatalf("send over stale conn should redial, got %v", err)
	}
	waitFor(t, func() bool { return len(got.snapshot()) == 1 })
	if s := n1.Stats(); s.SendRetries == 0 || s.ConnDrops == 0 {
		t.Errorf("stats should show the retry: %+v", s)
	}
}

// TestSendFailureStartsReconnect is the regression test for the send-path
// reconnect-suppression bug: Network.send retires a stale conn with
// connDead(cc, false), and because connDead is first-caller-wins, a send
// that beats the conn read loop to it used to permanently suppress
// background reconnect — and therefore OnPeerDown — for a genuinely dead
// peer. The peer here is killed mid-send (no read loop ever sees the
// death: the planted conn has none), so only the send path can detect it;
// after the synchronous retry budget is exhausted, reconnect must still
// run and OnPeerDown must still fire.
func TestSendFailureStartsReconnect(t *testing.T) {
	table := map[transport.Addr]string{}
	resolver := func(a transport.Addr) (string, error) { return StaticResolver(table)(a) }

	n1, err := ListenConfig("127.0.0.1:0", resolver, Config{
		FlushInterval:     -1, // sync writes: the send itself sees the failure
		SendRetries:       1,
		ReconnectAttempts: 1,
		BackoffMin:        5 * time.Millisecond,
		BackoffMax:        10 * time.Millisecond,
		HeartbeatInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()

	// A peer that is already gone: grab a real host:port, then kill it.
	n2, err := Listen("127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	hostport := n2.ListenAddr()
	peer := addr("b", "h2")
	table[addr("a", "h1")] = n1.ListenAddr()
	table[peer] = hostport
	if err := n2.Close(); err != nil {
		t.Fatal(err)
	}

	var downMu sync.Mutex
	var down []transport.Addr
	n1.OnPeerDown(func(a transport.Addr) {
		downMu.Lock()
		down = append(down, a)
		downMu.Unlock()
	})

	e1, _ := n1.NewEndpoint(addr("a", "h1"), func(transport.Addr, any) {})

	// The dead cached conn: a socket pair whose both ends are closed.
	c1, c2 := net.Pipe()
	_ = c1.Close()
	_ = c2.Close()
	plantConn(n1, hostport, c1, peer)

	// Mid-send the writes fail, the redial fails (peer is gone), and the
	// retry budget runs out.
	if err := e1.Send(peer, "doomed"); err == nil {
		t.Fatal("send to dead peer should fail")
	}

	// The fix: exhausting the synchronous budget hands the peer to the
	// background reconnect loop, which exhausts its own budget and
	// declares the peer down.
	waitFor(t, func() bool {
		downMu.Lock()
		defer downMu.Unlock()
		for _, a := range down {
			if a == peer {
				return true
			}
		}
		return false
	})
	if s := n1.Stats(); s.PeerDownEvents == 0 || s.Redials == 0 {
		t.Errorf("expected redials and peer-down events, got %+v", s)
	}
}

// TestRestartRecovery is the kill-and-restart scenario from real
// deployments: a peer process dies and comes back on the same host:port,
// and the very first subsequent Send from a surviving peer must succeed
// and be delivered — no spurious ErrUnreachable from the stale conn.
func TestRestartRecovery(t *testing.T) {
	table := map[transport.Addr]string{}
	resolver := func(a transport.Addr) (string, error) { return StaticResolver(table)(a) }

	// Background reconnect off on the sender so the test exercises the
	// pure send path against whatever conn state EOF cleanup leaves.
	n1, err := ListenConfig("127.0.0.1:0", resolver, Config{ReconnectAttempts: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := Listen("127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	hostport := n2.ListenAddr()
	table[addr("a", "h1")] = n1.ListenAddr()
	table[addr("b", "h2")] = hostport

	e1, _ := n1.NewEndpoint(addr("a", "h1"), func(transport.Addr, any) {})
	var got collect
	n2.NewEndpoint(addr("b", "h2"), func(_ transport.Addr, m any) { got.add(m) })

	if err := e1.Send(addr("b", "h2"), "before"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(got.snapshot()) == 1 })

	// Kill the peer. The sender's conn reader sees EOF and retires the
	// cached conn.
	if err := n2.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		n1.mu.Lock()
		defer n1.mu.Unlock()
		return len(n1.conns) == 0
	})

	// Restart on the same address.
	n2b, err := Listen(hostport, resolver)
	if err != nil {
		t.Fatal(err)
	}
	defer n2b.Close()
	var got2 collect
	n2b.NewEndpoint(addr("b", "h2"), func(_ transport.Addr, m any) { got2.add(m) })

	if err := e1.Send(addr("b", "h2"), "after"); err != nil {
		t.Fatalf("first send after peer restart failed: %v", err)
	}
	waitFor(t, func() bool { return len(got2.snapshot()) == 1 })
	if got2.snapshot()[0] != "after" {
		t.Errorf("delivered %v, want \"after\"", got2.snapshot()[0])
	}
}

// TestSlowEndpointNoHeadOfLineBlocking proves one endpoint with a stuck
// handler and a full queue cannot stall deliveries to other endpoints on
// the same listener.
func TestSlowEndpointNoHeadOfLineBlocking(t *testing.T) {
	table := map[transport.Addr]string{}
	resolver := func(a transport.Addr) (string, error) { return StaticResolver(table)(a) }

	n1, err := Listen("127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := ListenConfig("127.0.0.1:0", resolver, Config{QueueLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	table[addr("a", "h1")] = n1.ListenAddr()
	table[addr("b", "slow")] = n2.ListenAddr()
	table[addr("b", "fast")] = n2.ListenAddr()

	e1, _ := n1.NewEndpoint(addr("a", "h1"), func(transport.Addr, any) {})
	unblock := make(chan struct{})
	n2.NewEndpoint(addr("b", "slow"), func(transport.Addr, any) { <-unblock })
	var fast collect
	n2.NewEndpoint(addr("b", "fast"), func(_ transport.Addr, m any) { fast.add(m) })
	defer close(unblock)

	// Saturate the slow endpoint far past its queue bound...
	for i := 0; i < 20; i++ {
		if err := e1.Send(addr("b", "slow"), i); err != nil {
			t.Fatal(err)
		}
	}
	// ...then a delivery to the fast endpoint must still get through.
	if err := e1.Send(addr("b", "fast"), "through"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(fast.snapshot()) == 1 })
	if s := n2.Stats(); s.QueueDrops == 0 {
		t.Errorf("expected overflow drops on the slow endpoint, stats %+v", s)
	}
}

// TestDropOldestPolicy checks the alternative overflow policy: the queue
// keeps the newest deliveries, evicting the oldest.
func TestDropOldestPolicy(t *testing.T) {
	table := map[transport.Addr]string{}
	resolver := func(a transport.Addr) (string, error) { return StaticResolver(table)(a) }

	n1, err := Listen("127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := ListenConfig("127.0.0.1:0", resolver, Config{QueueLen: 2, Overflow: DropOldest})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	table[addr("a", "h1")] = n1.ListenAddr()
	table[addr("b", "h2")] = n2.ListenAddr()

	e1, _ := n1.NewEndpoint(addr("a", "h1"), func(transport.Addr, any) {})
	started := make(chan struct{})
	unblock := make(chan struct{})
	var got collect
	first := true
	n2.NewEndpoint(addr("b", "h2"), func(_ transport.Addr, m any) {
		got.add(m)
		if first {
			first = false
			close(started)
			<-unblock
		}
	})

	if err := e1.Send(addr("b", "h2"), 1); err != nil {
		t.Fatal(err)
	}
	<-started // handler is now stuck on message 1, queue is empty
	for _, v := range []int{2, 3, 4, 5} {
		if err := e1.Send(addr("b", "h2"), v); err != nil {
			t.Fatal(err)
		}
	}
	// Queue bound 2: 2 and 3 fill it, 4 evicts 2, 5 evicts 3.
	waitFor(t, func() bool { return n2.Stats().QueueDrops >= 2 })
	close(unblock)
	waitFor(t, func() bool { return len(got.snapshot()) == 3 })
	want := []any{1, 4, 5}
	snap := got.snapshot()
	for i, w := range want {
		if snap[i] != w {
			t.Fatalf("delivered %v, want %v", snap, want)
		}
	}
}

// TestHeartbeatPeerDownTriggersPastryRepair is the end-to-end rbayd-style
// scenario: two Pastry nodes over real TCP, one process dies, and the
// survivor's transport heartbeat/reconnect machinery — not simnet chaos
// injection, not Pastry's own probes (disabled here) — must surface the
// failure into NotePeerFailure so leaf-set repair fires.
func TestHeartbeatPeerDownTriggersPastryRepair(t *testing.T) {
	pastry.RegisterWire()
	table := map[transport.Addr]string{}
	resolver := func(a transport.Addr) (string, error) { return StaticResolver(table)(a) }

	fast := Config{
		HeartbeatInterval: 40 * time.Millisecond,
		HeartbeatMisses:   2,
		ReconnectAttempts: 2,
		BackoffMin:        10 * time.Millisecond,
		BackoffMax:        40 * time.Millisecond,
		DialTimeout:       time.Second,
	}
	n1, err := ListenConfig("127.0.0.1:0", resolver, fast)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := ListenConfig("127.0.0.1:0", resolver, fast)
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := addr("east", "n1"), addr("west", "n2")
	table[a1] = n1.ListenAddr()
	table[a2] = n2.ListenAddr()

	node1, err := pastry.NewNode(n1, a1, pastry.Config{LeafHalf: 4})
	if err != nil {
		t.Fatal(err)
	}
	var failMu sync.Mutex
	var failed []pastry.Entry
	node1.OnFailure(func(e pastry.Entry) {
		failMu.Lock()
		failed = append(failed, e)
		failMu.Unlock()
	})
	node2, err := pastry.NewNode(n2, a2, pastry.Config{LeafHalf: 4})
	if err != nil {
		t.Fatal(err)
	}

	// The wiring rbay.NewTCPNode installs for real daemons.
	n1.OnPeerDown(func(a transport.Addr) {
		node1.After(0, func() { node1.NoteAddrFailure(a) })
	})

	node1.BootstrapAlone()
	joined := make(chan struct{})
	if err := node2.JoinGlobal(a1, func() { close(joined) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-joined:
	case <-time.After(5 * time.Second):
		t.Fatal("join timed out")
	}
	// node1 must know node2 before we can observe repair.
	waitFor(t, func() bool {
		ok := make(chan bool, 1)
		node1.After(0, func() { ok <- len(node1.Leaf(pastry.GlobalScope).Members()) == 1 })
		return <-ok
	})

	// Kill the peer process outright.
	if err := n2.Close(); err != nil {
		t.Fatal(err)
	}

	// Heartbeat EOF → reconnect attempts exhaust → OnPeerDown →
	// NoteAddrFailure → leaf-set eviction + failure callback.
	waitFor(t, func() bool {
		failMu.Lock()
		defer failMu.Unlock()
		for _, e := range failed {
			if e.Addr == a2 {
				return true
			}
		}
		return false
	})
	waitFor(t, func() bool {
		ok := make(chan bool, 1)
		node1.After(0, func() { ok <- len(node1.Leaf(pastry.GlobalScope).Members()) == 0 })
		return <-ok
	})
	if s := n1.Stats(); s.PeerDownEvents == 0 {
		t.Errorf("expected peer-down events in stats, got %+v", s)
	}
}

// TestCloseSendRace hammers Send against Close under the race detector:
// a dial that completes after Close must not be re-cached (socket leak)
// or resurrect a closed network.
func TestCloseSendRace(t *testing.T) {
	table := map[transport.Addr]string{}
	resolver := func(a transport.Addr) (string, error) { return StaticResolver(table)(a) }

	n2, err := Listen("127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	table[addr("b", "h2")] = n2.ListenAddr()
	n2.NewEndpoint(addr("b", "h2"), func(transport.Addr, any) {})

	for i := 0; i < 20; i++ {
		n1, err := Listen("127.0.0.1:0", resolver)
		if err != nil {
			t.Fatal(err)
		}
		e1, _ := n1.NewEndpoint(addr("a", "h1"), func(transport.Addr, any) {})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = e1.Send(addr("b", "h2"), j)
			}
		}()
		if err := n1.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		n1.mu.Lock()
		leaked := len(n1.conns)
		n1.mu.Unlock()
		if leaked != 0 {
			t.Fatalf("iteration %d: %d conns cached after Close", i, leaked)
		}
	}
}

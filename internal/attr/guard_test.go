package attr

import (
	"errors"
	"strings"
	"testing"

	"rbay/internal/aal"
	"rbay/internal/metrics"
)

// TestHandlerPanicIsolated: a panic inside handler dispatch (here a host
// function planted in the runtime) must surface as this invocation's
// error, not unwind into the caller.
func TestHandlerPanicIsolated(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewMap(Options{NodeID: "n1", Site: "virginia", Metrics: reg})
	if err := m.Attach("GPU", `function onTimer() boom() end`); err != nil {
		t.Fatalf("attach: %v", err)
	}
	a, _ := m.Lookup("GPU")
	a.rt.SetGlobal("boom", &aal.GoFunc{Name: "boom", Fn: func(*aal.Runtime, []aal.Value) ([]aal.Value, error) {
		panic("host bug")
	}})

	err := m.OnTimer("GPU")
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not surfaced as error: %v", err)
	}
	if got := reg.Snapshot().Counters["rbay_aa_panics_total"]; got != 1 {
		t.Errorf("rbay_aa_panics_total = %d, want 1", got)
	}
	// The map must still be fully usable afterwards.
	m.Set("GPU", true)
	if v, ok := m.Get("GPU"); !ok || v != true {
		t.Errorf("map unusable after contained panic: %v %v", v, ok)
	}
}

// TestQuarantineAfterConsecutiveFailures: a script whose handler keeps
// failing is cut off after the threshold, fails closed, and is restored
// by re-attaching.
func TestQuarantineAfterConsecutiveFailures(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewMap(Options{NodeID: "n1", Site: "virginia", Metrics: reg, QuarantineAfter: 3})
	m.Set("GPU", true)
	script := `
		function onGet(caller, payload) return no_such_fn() end
		function onSubscribe(caller, topic) return true end
	`
	if err := m.Attach("GPU", script); err != nil {
		t.Fatalf("attach: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.OnGet("GPU", "joe", nil); err == nil {
			t.Fatalf("call %d: want handler error", i)
		}
	}
	a, _ := m.Lookup("GPU")
	if !a.Quarantined() {
		t.Fatal("attribute not quarantined after 3 consecutive failures")
	}
	// Quarantined invocations refuse without running admin code and fail
	// closed: OnGet denies instead of defaulting to exposure.
	v, err := m.OnGet("GPU", "joe", nil)
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("err = %v, want ErrQuarantined", err)
	}
	if v != nil {
		t.Fatalf("quarantined OnGet exposed %v", v)
	}
	if ok, err := m.OnSubscribe("GPU", "rbay", "tree"); ok || err == nil {
		t.Fatalf("quarantined OnSubscribe = %v, %v; want false + error", ok, err)
	}
	if got := reg.Snapshot().Counters["rbay_aa_quarantined_total"]; got != 1 {
		t.Errorf("rbay_aa_quarantined_total = %d, want 1", got)
	}

	// Re-attaching a (fixed) script clears the quarantine.
	if err := m.Attach("GPU", `function onGet(caller, payload) return AttrValue end`); err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	if a.Quarantined() {
		t.Fatal("re-attach did not clear quarantine")
	}
	if v, err := m.OnGet("GPU", "joe", nil); err != nil || v != true {
		t.Fatalf("after re-attach OnGet = %v, %v", v, err)
	}
}

// TestFailureCountResetsOnSuccess: intermittent failures below the
// threshold never quarantine.
func TestFailureCountResetsOnSuccess(t *testing.T) {
	m := NewMap(Options{NodeID: "n1", Site: "s", QuarantineAfter: 2})
	m.Set("x", 1)
	script := `
		AA = {Fail = nil}
		function onDeliver(caller, payload)
			AA.Fail = payload
			return nil
		end
		function onTimer()
			if AA.Fail then return no_such_fn() end
			return nil
		end
	`
	if err := m.Attach("x", script); err != nil {
		t.Fatalf("attach: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.OnDeliver("x", "admin", true); err != nil {
			t.Fatalf("arm fail: %v", err)
		}
		if err := m.OnTimer("x"); err == nil {
			t.Fatal("want failure")
		}
		if _, err := m.OnDeliver("x", "admin", nil); err != nil {
			t.Fatalf("disarm: %v", err)
		}
		if err := m.OnTimer("x"); err != nil {
			t.Fatalf("healthy call failed: %v", err)
		}
	}
	a, _ := m.Lookup("x")
	if a.Quarantined() {
		t.Fatal("intermittent failures tripped quarantine despite resets")
	}
}

// TestNegativeQuarantineDisables: QuarantineAfter < 0 never quarantines.
func TestNegativeQuarantineDisables(t *testing.T) {
	m := NewMap(Options{NodeID: "n1", Site: "s", QuarantineAfter: -1})
	if err := m.Attach("x", `function onTimer() return no_such_fn() end`); err != nil {
		t.Fatalf("attach: %v", err)
	}
	for i := 0; i < 20; i++ {
		if err := m.OnTimer("x"); errors.Is(err, ErrQuarantined) {
			t.Fatalf("call %d quarantined despite QuarantineAfter=-1", i)
		}
	}
}

// TestMutationHooks: OnSet/OnDelete/OnAttach observe every mutation,
// including writes from inside a script via setattr.
func TestMutationHooks(t *testing.T) {
	var events []string
	m := NewMap(Options{
		NodeID:   "n1",
		Site:     "s",
		OnSet:    func(name string, v any) { events = append(events, "set:"+name) },
		OnDelete: func(name string) { events = append(events, "del:"+name) },
		OnAttach: func(name, script string) { events = append(events, "attach:"+name) },
	})
	m.Set("GPU", true)
	if err := m.Attach("GPU", `function onDeliver(caller, payload) setattr("shadow", payload) return nil end`); err != nil {
		t.Fatalf("attach: %v", err)
	}
	if _, err := m.OnDeliver("GPU", "admin", 7); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	m.Delete("shadow")
	m.Delete("missing") // no-op: must not fire the hook
	want := []string{"set:GPU", "attach:GPU", "set:shadow", "del:shadow"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

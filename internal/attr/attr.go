// Package attr implements the second and third architectural components of
// an RBAY node (paper Fig. 4): the key-value map of resource attributes,
// and the active-attribute (AA) runtime that dispatches admin-written
// handlers — onGet, onSubscribe, onUnsubscribe, onDeliver, onTimer — over
// that map.
package attr

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"time"

	"rbay/internal/aal"
	"rbay/internal/metrics"
)

// Handler names recognized by the AA runtime (paper Table I).
const (
	HandlerGet         = "onGet"
	HandlerSubscribe   = "onSubscribe"
	HandlerUnsubscribe = "onUnsubscribe"
	HandlerDeliver     = "onDeliver"
	HandlerTimer       = "onTimer"
)

// DefaultQuarantineAfter is the consecutive handler-failure count at
// which an attribute's handlers are quarantined when Options leaves
// QuarantineAfter at zero.
const DefaultQuarantineAfter = 5

// ErrQuarantined marks handler invocations refused because the attribute
// tripped the consecutive-failure quarantine. Callers fail closed: gets
// are denied, tree membership is dropped.
var ErrQuarantined = errors.New("handler quarantined")

// Options configures a node's attribute map.
type Options struct {
	// NodeID and Site are injected into every handler runtime as the
	// globals NodeId and Site.
	NodeID string
	Site   string
	// Now supplies the (virtual) clock to handler runtimes.
	Now func() time.Time
	// AAL tunes handler execution limits. Now is overridden by the field
	// above.
	AAL aal.Options
	// Metrics counts handler panics, failures and quarantines. Nil is
	// fine (metrics.Registry is nil-safe).
	Metrics *metrics.Registry
	// QuarantineAfter is how many consecutive handler failures (errors or
	// panics) quarantine an attribute — its handlers stop being invoked
	// until a script is re-attached, so one bad script cannot take down
	// the node or stall the timer loop. 0 means DefaultQuarantineAfter;
	// negative disables quarantine.
	QuarantineAfter int
	// OnSet, OnDelete and OnAttach observe every successful mutation of
	// the map, whoever performs it — the admin surface, a monitor feed, or
	// an AA script calling setattr. The durable store hangs its WAL off
	// these.
	OnSet    func(name string, value any)
	OnDelete func(name string)
	OnAttach func(name, script string)
}

// Attribute is one resource attribute: a key-value pair that may carry an
// active handler table.
type Attribute struct {
	name  string
	value any

	script      string
	chunk       *aal.Chunk
	rt          *aal.Runtime
	baseGlobals int // stdlib globals present before the script ran

	// failures counts consecutive handler errors/panics; quarantined trips
	// once it reaches the map's threshold (see Options.QuarantineAfter).
	failures    int
	quarantined bool
}

// Name returns the attribute's key.
func (a *Attribute) Name() string { return a.name }

// Value returns the current monitored value.
func (a *Attribute) Value() any { return a.value }

// Active reports whether an AA script is attached.
func (a *Attribute) Active() bool { return a.rt != nil }

// Script returns the attached AA source ("" if plain).
func (a *Attribute) Script() string { return a.script }

// Quarantined reports whether consecutive handler failures disabled this
// attribute's handlers (re-attach a script to clear it).
func (a *Attribute) Quarantined() bool { return a.quarantined }

// HasHandler reports whether the attached AA defines the named handler.
func (a *Attribute) HasHandler(name string) bool {
	return a.rt != nil && a.rt.HasGlobal(name)
}

// Per-AA memory accounting constants, calibrated to the paper's Fig. 8c
// discussion of a Lua AA (a table holding persistent state plus handler
// closures). Compiled chunks are shared across identical scripts (see the
// chunk cache), so only a pointer is charged per attribute.
const (
	entryOverheadBytes  = 64 // map entry + attribute struct
	valueOverheadBytes  = 16
	aaRuntimeBytes      = 96 // interpreter + environment skeleton
	aaChunkPointerBytes = 8
	aaGlobalBytes       = 32 // one admin-defined global (AA table slot, handler ref)
)

// EstimateBytes approximates the attribute's memory footprint: the
// paper's Fig. 8c compares this accounting between RBAY attributes (with
// handlers) and plain PAST-style key-value entries.
func (a *Attribute) EstimateBytes() int {
	n := entryOverheadBytes + len(a.name) + valueBytes(a.value)
	if a.rt != nil {
		// The admin's own global state (the AA table and handlers) is what
		// grows per attribute; the sandboxed stdlib is identical in every
		// runtime and the compiled chunk is shared, so both are discounted.
		adminGlobals := a.rt.Globals().Size() - a.baseGlobals
		if adminGlobals < 0 {
			adminGlobals = 0
		}
		n += aaRuntimeBytes + aaChunkPointerBytes + len(a.script)/16 + aaGlobalBytes*adminGlobals
	}
	return n
}

func valueBytes(v any) int {
	switch x := v.(type) {
	case string:
		return len(x) + valueOverheadBytes
	case []string:
		n := valueOverheadBytes
		for _, s := range x {
			n += len(s) + valueOverheadBytes
		}
		return n
	case nil:
		return 0
	default:
		return valueOverheadBytes
	}
}

// chunkCache shares compiled chunks across attributes and nodes: admins
// attach the same policy script to thousands of attributes, and chunks
// are immutable.
var chunkCache sync.Map // script string → *aal.Chunk

// Map is one node's attribute store.
type Map struct {
	opts  Options
	attrs map[string]*Attribute
}

// NewMap creates an empty attribute map.
func NewMap(opts Options) *Map {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Map{opts: opts, attrs: make(map[string]*Attribute)}
}

// Set creates or updates an attribute's monitored value, preserving any
// attached handler. Writing the value the attribute already holds is a
// no-op: monitoring substrates re-push unchanged values every tick
// (Static generators, boundary-clamped walks), and without suppression
// each of those fired OnSet — one redundant WAL frame plus one view
// re-evaluation — amplifying churn cost for data that didn't change.
func (m *Map) Set(name string, value any) {
	a := m.attrs[name]
	if a == nil {
		a = &Attribute{name: name}
		m.attrs[name] = a
	} else if valuesEqual(a.value, value) {
		return
	}
	a.value = value
	if a.rt != nil {
		a.rt.SetGlobal("AttrValue", aal.FromGo(value))
	}
	if m.opts.OnSet != nil {
		m.opts.OnSet(name, value)
	}
}

// valuesEqual reports whether an attribute write is a no-op. Fast paths
// cover the types generators and the store codec produce; anything else
// falls back to reflect.DeepEqual. NaN compares unequal to itself, so a
// NaN-valued write is conservatively treated as a change.
func valuesEqual(a, b any) bool {
	switch x := a.(type) {
	case nil:
		return b == nil
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case int:
		y, ok := b.(int)
		return ok && x == y
	case int64:
		y, ok := b.(int64)
		return ok && x == y
	case float64:
		y, ok := b.(float64)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case []string:
		y, ok := b.([]string)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	default:
		return reflect.DeepEqual(a, b)
	}
}

// BatchEntry is one write in a coalesced apply batch.
type BatchEntry struct {
	Name  string
	Value any
}

// ApplyBatch sets every entry's value in order, skipping writes the map
// already holds (same no-op rule as Set), and returns the entries that
// actually changed. The per-write OnSet hook deliberately does NOT fire:
// batch callers (the ingest apply loop) record the returned entries as
// one WAL frame and run a single deferred view pass, instead of paying
// one frame and one re-evaluation per key.
func (m *Map) ApplyBatch(entries []BatchEntry) []BatchEntry {
	changed := entries[:0:0]
	for _, e := range entries {
		a := m.attrs[e.Name]
		if a == nil {
			a = &Attribute{name: e.Name}
			m.attrs[e.Name] = a
		} else if valuesEqual(a.value, e.Value) {
			continue
		}
		a.value = e.Value
		if a.rt != nil {
			a.rt.SetGlobal("AttrValue", aal.FromGo(e.Value))
		}
		changed = append(changed, e)
	}
	return changed
}

// Get returns an attribute's current value.
func (m *Map) Get(name string) (any, bool) {
	a := m.attrs[name]
	if a == nil {
		return nil, false
	}
	return a.value, true
}

// Delete removes an attribute entirely.
func (m *Map) Delete(name string) {
	if _, ok := m.attrs[name]; !ok {
		return
	}
	delete(m.attrs, name)
	if m.opts.OnDelete != nil {
		m.opts.OnDelete(name)
	}
}

// Len returns the number of attributes.
func (m *Map) Len() int { return len(m.attrs) }

// Names returns all attribute names (order unspecified).
func (m *Map) Names() []string {
	out := make([]string, 0, len(m.attrs))
	for n := range m.attrs {
		out = append(out, n)
	}
	return out
}

// Lookup returns the attribute struct itself.
func (m *Map) Lookup(name string) (*Attribute, bool) {
	a, ok := m.attrs[name]
	return a, ok
}

// EstimateBytes sums the approximate footprint of all attributes.
func (m *Map) EstimateBytes() int {
	n := 0
	for _, a := range m.attrs {
		n += a.EstimateBytes()
	}
	return n
}

// Attach compiles an AA script and binds it to the attribute, creating the
// attribute if needed. The script runs once immediately (defining the AA
// table and handlers); its runtime persists across handler invocations.
// Attaching replaces any previous handler.
func (m *Map) Attach(name, script string) error {
	var chunk *aal.Chunk
	if cached, ok := chunkCache.Load(script); ok {
		chunk = cached.(*aal.Chunk)
	} else {
		compiled, err := aal.Compile(script)
		if err != nil {
			return fmt.Errorf("attr: attach %q: %w", name, err)
		}
		chunkCache.Store(script, compiled)
		chunk = compiled
	}
	a := m.attrs[name]
	if a == nil {
		a = &Attribute{name: name}
		m.attrs[name] = a
	}
	opts := m.opts.AAL
	opts.Now = m.opts.Now
	rt := aal.NewRuntime(opts)
	m.injectHost(rt, a)
	base := rt.Globals().Size()
	if err := rt.Run(chunk); err != nil {
		return fmt.Errorf("attr: attach %q: %w", name, err)
	}
	a.script = script
	a.chunk = chunk
	a.rt = rt
	a.baseGlobals = base
	// A fresh script gets a fresh record: re-attaching is how an admin
	// clears a quarantine.
	a.failures = 0
	a.quarantined = false
	if m.opts.OnAttach != nil {
		m.opts.OnAttach(name, script)
	}
	return nil
}

// injectHost installs the host-side globals a handler can use: node
// identity, the attribute's name and live value, and cross-attribute
// accessors.
func (m *Map) injectHost(rt *aal.Runtime, a *Attribute) {
	rt.SetGlobal("NodeId", m.opts.NodeID)
	rt.SetGlobal("Site", m.opts.Site)
	rt.SetGlobal("AttrName", a.name)
	rt.SetGlobal("AttrValue", aal.FromGo(a.value))
	rt.SetGlobal("getattr", &aal.GoFunc{Name: "getattr", Fn: func(_ *aal.Runtime, args []aal.Value) ([]aal.Value, error) {
		name, _ := argString(args, 0)
		v, ok := m.Get(name)
		if !ok {
			return []aal.Value{nil}, nil
		}
		return []aal.Value{aal.FromGo(v)}, nil
	}})
	rt.SetGlobal("setattr", &aal.GoFunc{Name: "setattr", Fn: func(_ *aal.Runtime, args []aal.Value) ([]aal.Value, error) {
		name, ok := argString(args, 0)
		if !ok {
			return nil, fmt.Errorf("setattr: attribute name must be a string")
		}
		var v aal.Value
		if len(args) > 1 {
			v = args[1]
		}
		m.Set(name, aal.ToGo(v))
		return nil, nil
	}})
	// Cryptographic primitives — the enhancement the paper sketches for
	// Fig. 5 ("can easily be enhanced via encryption primitives involving
	// the AA and public/private key pairs"). All pure functions: they keep
	// the sandbox's no-I/O guarantee.
	rt.SetGlobal("sha256hex", &aal.GoFunc{Name: "sha256hex", Fn: func(_ *aal.Runtime, args []aal.Value) ([]aal.Value, error) {
		s, ok := argString(args, 0)
		if !ok {
			return nil, fmt.Errorf("sha256hex: want a string")
		}
		sum := sha256.Sum256([]byte(s))
		return []aal.Value{hex.EncodeToString(sum[:])}, nil
	}})
	rt.SetGlobal("hmac_sha256", &aal.GoFunc{Name: "hmac_sha256", Fn: func(_ *aal.Runtime, args []aal.Value) ([]aal.Value, error) {
		key, kok := argString(args, 0)
		msg, mok := argString(args, 1)
		if !kok || !mok {
			return nil, fmt.Errorf("hmac_sha256: want (key, message) strings")
		}
		mac := hmac.New(sha256.New, []byte(key))
		mac.Write([]byte(msg))
		return []aal.Value{hex.EncodeToString(mac.Sum(nil))}, nil
	}})
	rt.SetGlobal("ed25519_verify", &aal.GoFunc{Name: "ed25519_verify", Fn: func(_ *aal.Runtime, args []aal.Value) ([]aal.Value, error) {
		pubHex, pok := argString(args, 0)
		msg, mok := argString(args, 1)
		sigHex, sok := argString(args, 2)
		if !pok || !mok || !sok {
			return nil, fmt.Errorf("ed25519_verify: want (pubkey-hex, message, signature-hex)")
		}
		pub, err := hex.DecodeString(pubHex)
		if err != nil || len(pub) != ed25519.PublicKeySize {
			return []aal.Value{false}, nil
		}
		sig, err := hex.DecodeString(sigHex)
		if err != nil || len(sig) != ed25519.SignatureSize {
			return []aal.Value{false}, nil
		}
		return []aal.Value{ed25519.Verify(ed25519.PublicKey(pub), []byte(msg), sig)}, nil
	}})
}

func argString(args []aal.Value, i int) (string, bool) {
	if i >= len(args) {
		return "", false
	}
	s, ok := args[i].(string)
	return s, ok
}

// Result is a handler invocation outcome.
type Result struct {
	// Value is the handler's first return value (converted to Go data),
	// nil when the handler returned nothing or nil.
	Value any
	// Handled is false when the attribute has no handler for the event
	// (the caller applies default policy).
	Handled bool
	// Steps is the instruction count consumed.
	Steps int
}

// Invoke runs the named handler of an attribute. Arguments are converted
// with aal.FromGo. Unattached attributes and missing handlers return
// Handled=false with no error. A panicking handler is contained (the
// panic becomes the returned error, it never unwinds into the node), and
// an attribute whose handlers fail QuarantineAfter times in a row is
// quarantined: further invocations return ErrQuarantined without running
// admin code, so callers fail closed rather than open.
func (m *Map) Invoke(attrName, handler string, args ...any) (Result, error) {
	a := m.attrs[attrName]
	if a == nil || a.rt == nil || !a.rt.HasGlobal(handler) {
		return Result{}, nil
	}
	return m.invoke(a, attrName, handler, args)
}

// hasHandler reports whether the attribute has admin code for the event.
// The On* wrappers check it before boxing arguments: most attributes have
// no handlers, and building a variadic []any per event on every membership
// pass of every node was pure overhead.
func (m *Map) hasHandler(attrName, handler string) bool {
	a := m.attrs[attrName]
	return a != nil && a.rt != nil && a.rt.HasGlobal(handler)
}

func (m *Map) invoke(a *Attribute, attrName, handler string, args []any) (Result, error) {
	if a.quarantined {
		return Result{Handled: true}, fmt.Errorf("attr: %s.%s: %w", attrName, handler, ErrQuarantined)
	}
	vals := make([]aal.Value, len(args))
	for i, arg := range args {
		vals[i] = aal.FromGo(arg)
	}
	out, err := m.callGuarded(a, handler, vals)
	res := Result{Handled: true, Steps: a.rt.Steps()}
	if err != nil {
		m.noteFailure(a)
		return res, fmt.Errorf("attr: %s.%s: %w", attrName, handler, err)
	}
	a.failures = 0
	if len(out) > 0 {
		res.Value = aal.ToGo(out[0])
	}
	return res, nil
}

// callGuarded runs the handler with panic isolation: a panic anywhere in
// the interpreter or a host function surfaces as an error on this
// invocation only.
func (m *Map) callGuarded(a *Attribute, handler string, vals []aal.Value) (out []aal.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.opts.Metrics.Inc("rbay_aa_panics_total")
			err = fmt.Errorf("handler panicked: %v", r)
		}
	}()
	return a.rt.CallGlobal(handler, vals...)
}

// noteFailure counts one handler error and trips the quarantine when the
// consecutive-failure threshold is reached.
func (m *Map) noteFailure(a *Attribute) {
	m.opts.Metrics.Inc("rbay_aa_handler_failures_total")
	limit := m.opts.QuarantineAfter
	if limit == 0 {
		limit = DefaultQuarantineAfter
	}
	if limit < 0 {
		return
	}
	a.failures++
	if a.failures >= limit && !a.quarantined {
		a.quarantined = true
		m.opts.Metrics.Inc("rbay_aa_quarantined_total")
	}
}

// OnGet dispatches a get event (paper: invoked when a customer query
// performs a get on this node). Without a handler the attribute's value is
// returned directly — exposure is the default, policy restricts it.
func (m *Map) OnGet(attrName string, caller string, payload any) (any, error) {
	if !m.hasHandler(attrName, HandlerGet) {
		v, ok := m.Get(attrName)
		if !ok {
			return nil, nil
		}
		return v, nil
	}
	res, err := m.Invoke(attrName, HandlerGet, caller, payload)
	if err != nil {
		return nil, err
	}
	if !res.Handled {
		v, ok := m.Get(attrName)
		if !ok {
			return nil, nil
		}
		return v, nil
	}
	return res.Value, nil
}

// OnSubscribe asks whether the node should (still) belong to the topic's
// tree. A handler returning non-nil means join/stay; absent handlers
// default to true.
func (m *Map) OnSubscribe(attrName, caller, topic string) (bool, error) {
	if !m.hasHandler(attrName, HandlerSubscribe) {
		return true, nil
	}
	res, err := m.Invoke(attrName, HandlerSubscribe, caller, topic)
	if err != nil {
		return false, err
	}
	if !res.Handled {
		return true, nil
	}
	return res.Value != nil, nil
}

// OnUnsubscribe asks whether the node should leave the topic's tree. A
// handler returning non-nil means leave; absent handlers default to false.
func (m *Map) OnUnsubscribe(attrName, caller, topic string) (bool, error) {
	if !m.hasHandler(attrName, HandlerUnsubscribe) {
		return false, nil
	}
	res, err := m.Invoke(attrName, HandlerUnsubscribe, caller, topic)
	if err != nil {
		return false, err
	}
	if !res.Handled {
		return false, nil
	}
	return res.Value != nil, nil
}

// OnDeliver dispatches an admin control message; a handler returning
// non-nil updates the attribute's value with it (paper Table I).
func (m *Map) OnDeliver(attrName, caller string, payload any) (any, error) {
	res, err := m.Invoke(attrName, HandlerDeliver, caller, payload)
	if err != nil {
		return nil, err
	}
	if res.Handled && res.Value != nil {
		m.Set(attrName, res.Value)
	}
	return res.Value, nil
}

// OnTimer dispatches the periodic maintenance event to one attribute.
func (m *Map) OnTimer(attrName string) error {
	_, err := m.Invoke(attrName, HandlerTimer)
	return err
}

// OnTimerAll dispatches the timer event to every active attribute,
// returning the first error (all attributes are still visited).
func (m *Map) OnTimerAll() error {
	var first error
	for name, a := range m.attrs {
		if a.rt == nil {
			continue
		}
		if err := m.OnTimer(name); err != nil && first == nil {
			first = err
		}
	}
	return first
}

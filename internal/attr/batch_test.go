package attr

import (
	"reflect"
	"testing"
)

func TestSetSuppressesNoOpWrites(t *testing.T) {
	var sets []string
	m := NewMap(Options{OnSet: func(name string, value any) { sets = append(sets, name) }})

	m.Set("cpu", 0.5)
	m.Set("cpu", 0.5) // unchanged: no hook
	m.Set("cpu", 0.6)
	m.Set("gpu_model", "a100")
	m.Set("gpu_model", "a100") // unchanged
	m.Set("tags", []string{"x", "y"})
	m.Set("tags", []string{"x", "y"}) // unchanged slice contents
	m.Set("tags", []string{"x", "z"})

	want := []string{"cpu", "cpu", "gpu_model", "tags", "tags"}
	if !reflect.DeepEqual(sets, want) {
		t.Fatalf("OnSet fired for %v, want %v", sets, want)
	}
	// The map still holds the final values.
	if v, _ := m.Get("cpu"); v != 0.6 {
		t.Fatalf("cpu = %v, want 0.6", v)
	}
}

func TestSetNilAndTypeChangesAreWrites(t *testing.T) {
	var sets int
	m := NewMap(Options{OnSet: func(string, any) { sets++ }})
	m.Set("a", nil)
	m.Set("a", nil) // no-op
	m.Set("a", 0.0) // nil → float is a change
	m.Set("a", 0)   // float64(0) → int(0) is a type change, still a write
	if sets != 3 {
		t.Fatalf("OnSet fired %d times, want 3", sets)
	}
}

func TestSetSuppressionKeepsAAValueFresh(t *testing.T) {
	m := NewMap(Options{})
	script := `
AA = {}
function onGet(caller, payload)
  return AttrValue
end
`
	if err := m.Attach("cpu", script); err != nil {
		t.Fatalf("attach: %v", err)
	}
	m.Set("cpu", 0.25)
	m.Set("cpu", 0.25)
	v, err := m.OnGet("cpu", "caller", nil)
	if err != nil {
		t.Fatalf("onGet: %v", err)
	}
	if v != 0.25 {
		t.Fatalf("AttrValue = %v, want 0.25", v)
	}
}

func TestApplyBatchReturnsChangedOnly(t *testing.T) {
	var hookFired bool
	m := NewMap(Options{OnSet: func(string, any) { hookFired = true }})
	m.Set("static", "v100")
	hookFired = false

	changed := m.ApplyBatch([]BatchEntry{
		{Name: "cpu", Value: 0.5},
		{Name: "static", Value: "v100"}, // unchanged: filtered out
		{Name: "mem", Value: 0.3},
	})
	want := []BatchEntry{{Name: "cpu", Value: 0.5}, {Name: "mem", Value: 0.3}}
	if !reflect.DeepEqual(changed, want) {
		t.Fatalf("changed = %v, want %v", changed, want)
	}
	if hookFired {
		t.Fatal("ApplyBatch must not fire the per-write OnSet hook")
	}
	if v, ok := m.Get("cpu"); !ok || v != 0.5 {
		t.Fatalf("cpu = %v (%v), want 0.5", v, ok)
	}
}

func TestApplyBatchUpdatesAARuntime(t *testing.T) {
	m := NewMap(Options{})
	script := `
AA = {}
function onGet(caller, payload)
  return AttrValue
end
`
	if err := m.Attach("cpu", script); err != nil {
		t.Fatalf("attach: %v", err)
	}
	m.ApplyBatch([]BatchEntry{{Name: "cpu", Value: 0.75}})
	v, err := m.OnGet("cpu", "caller", nil)
	if err != nil {
		t.Fatalf("onGet: %v", err)
	}
	if v != 0.75 {
		t.Fatalf("AttrValue = %v, want 0.75 after batch apply", v)
	}
}

func TestValuesEqual(t *testing.T) {
	cases := []struct {
		a, b any
		eq   bool
	}{
		{nil, nil, true},
		{nil, 0, false},
		{true, true, true},
		{true, false, false},
		{1, 1, true},
		{1, int64(1), false}, // type change is a write
		{int64(7), int64(7), true},
		{0.5, 0.5, true},
		{0.5, 0.6, false},
		{"a", "a", true},
		{"a", "b", false},
		{[]string{"x"}, []string{"x"}, true},
		{[]string{"x"}, []string{"y"}, false},
		{[]string{"x"}, []string{"x", "y"}, false},
		{map[string]int{"k": 1}, map[string]int{"k": 1}, true}, // DeepEqual fallback
	}
	for _, c := range cases {
		if got := valuesEqual(c.a, c.b); got != c.eq {
			t.Errorf("valuesEqual(%v, %v) = %v, want %v", c.a, c.b, got, c.eq)
		}
	}
}

package attr

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"
	"time"
)

func TestPlainAttributes(t *testing.T) {
	m := NewMap(Options{NodeID: "n1", Site: "virginia"})
	m.Set("GPU", true)
	m.Set("CPU_utilization", 0.5)
	m.Set("Matlab", "9.0")

	if v, ok := m.Get("GPU"); !ok || v != true {
		t.Errorf("GPU = %v,%v", v, ok)
	}
	if m.Len() != 3 {
		t.Errorf("Len = %d", m.Len())
	}
	// Default policy without handler: get returns the value.
	v, err := m.OnGet("Matlab", "joe", nil)
	if err != nil || v != "9.0" {
		t.Errorf("OnGet = %v, %v", v, err)
	}
	// Default subscribe: yes; default unsubscribe: no.
	if ok, _ := m.OnSubscribe("GPU", "admin", "GPU-tree"); !ok {
		t.Error("default subscribe should be true")
	}
	if leave, _ := m.OnUnsubscribe("GPU", "admin", "GPU-tree"); leave {
		t.Error("default unsubscribe should be false")
	}
	m.Delete("GPU")
	if _, ok := m.Get("GPU"); ok {
		t.Error("deleted attribute still present")
	}
	if v, _ := m.OnGet("nonexistent", "joe", nil); v != nil {
		t.Errorf("get on missing attribute = %v", v)
	}
}

func TestPasswordHandler(t *testing.T) {
	m := NewMap(Options{NodeID: "node-27", Site: "virginia"})
	m.Set("GPU", true)
	err := m.Attach("GPU", `
		AA = {Password = "3053482032"}
		function onGet(caller, password)
			if password == AA.Password then
				return NodeId
			end
			return nil
		end
	`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.OnGet("GPU", "joe", "3053482032")
	if err != nil {
		t.Fatal(err)
	}
	if v != "node-27" {
		t.Errorf("correct password: %v", v)
	}
	v, err = m.OnGet("GPU", "joe", "guess")
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Errorf("wrong password exposed %v", v)
	}
}

func TestSubscribeHandlerSeesLiveAttributeValues(t *testing.T) {
	m := NewMap(Options{NodeID: "n1", Site: "oregon"})
	m.Set("CPU_utilization", 0.05)
	err := m.Attach("CPU_utilization", `
		function onSubscribe(caller, topic)
			if getattr("CPU_utilization") < 0.10 then return NodeId end
			return nil
		end
		function onUnsubscribe(caller, topic)
			if getattr("CPU_utilization") >= 0.10 then return NodeId end
			return nil
		end
	`)
	if err != nil {
		t.Fatal(err)
	}
	join, err := m.OnSubscribe("CPU_utilization", "rbay", "CPU_utilization<10%")
	if err != nil || !join {
		t.Fatalf("idle node should join: %v %v", join, err)
	}
	if leave, _ := m.OnUnsubscribe("CPU_utilization", "rbay", "CPU_utilization<10%"); leave {
		t.Error("idle node should stay")
	}
	// Node becomes overloaded: next interval it must leave (paper §III-B).
	m.Set("CPU_utilization", 0.93)
	join, _ = m.OnSubscribe("CPU_utilization", "rbay", "CPU_utilization<10%")
	if join {
		t.Error("overloaded node should not join")
	}
	if leave, _ := m.OnUnsubscribe("CPU_utilization", "rbay", "CPU_utilization<10%"); !leave {
		t.Error("overloaded node should leave")
	}
}

func TestOnDeliverUpdatesValue(t *testing.T) {
	m := NewMap(Options{NodeID: "n1", Site: "tokyo"})
	m.Set("rental_price", 10.0)
	err := m.Attach("rental_price", `
		function onDeliver(caller, payload)
			if caller == "admin" then return payload end
			return nil
		end
	`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.OnDeliver("rental_price", "admin", 12.5)
	if err != nil {
		t.Fatal(err)
	}
	if v != 12.5 {
		t.Errorf("deliver returned %v", v)
	}
	if got, _ := m.Get("rental_price"); got != 12.5 {
		t.Errorf("value not updated: %v", got)
	}
	// Non-admin deliver is ignored.
	if _, err := m.OnDeliver("rental_price", "mallory", 0.0); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Get("rental_price"); got != 12.5 {
		t.Errorf("non-admin deliver changed value: %v", got)
	}
}

func TestOnTimerAndSetattr(t *testing.T) {
	m := NewMap(Options{NodeID: "n1", Site: "sydney"})
	m.Set("lease_remaining", 3.0)
	m.Set("exposed", true)
	err := m.Attach("lease_remaining", `
		function onTimer()
			local left = getattr("lease_remaining") - 1
			setattr("lease_remaining", left)
			if left <= 0 then setattr("exposed", false) end
		end
	`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := m.OnTimerAll(); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := m.Get("lease_remaining"); v != 0.0 {
		t.Errorf("lease_remaining = %v", v)
	}
	if v, _ := m.Get("exposed"); v != false {
		t.Errorf("exposed = %v, want false after lease expiry", v)
	}
}

func TestHandlerClockIsInjected(t *testing.T) {
	now := time.Date(2017, 6, 5, 12, 0, 0, 0, time.UTC)
	m := NewMap(Options{NodeID: "n1", Site: "ireland", Now: func() time.Time { return now }})
	m.Set("window", true)
	if err := m.Attach("window", `function onGet(c) return now() end`); err != nil {
		t.Fatal(err)
	}
	v, err := m.OnGet("window", "joe", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != float64(now.Unix()) {
		t.Errorf("handler now() = %v, want %v", v, now.Unix())
	}
}

func TestAttachErrors(t *testing.T) {
	m := NewMap(Options{})
	if err := m.Attach("x", "syntax error ("); err == nil {
		t.Error("bad syntax accepted")
	}
	if err := m.Attach("x", `error("boom at load")`); err == nil {
		t.Error("load-time error swallowed")
	}
}

func TestHandlerRuntimeErrorPropagates(t *testing.T) {
	m := NewMap(Options{})
	m.Set("x", 1)
	if err := m.Attach("x", `function onGet(c) return nil + 1 end`); err != nil {
		t.Fatal(err)
	}
	_, err := m.OnGet("x", "joe", nil)
	if err == nil || !strings.Contains(err.Error(), "arithmetic") {
		t.Fatalf("err = %v", err)
	}
}

func TestAttributeValueVisibleToHandler(t *testing.T) {
	m := NewMap(Options{})
	m.Set("CPU", 0.42)
	if err := m.Attach("CPU", `function onGet(c) return AttrValue end`); err != nil {
		t.Fatal(err)
	}
	v, _ := m.OnGet("CPU", "joe", nil)
	if v != 0.42 {
		t.Errorf("AttrValue = %v", v)
	}
	m.Set("CPU", 0.07) // monitored update must be visible
	v, _ = m.OnGet("CPU", "joe", nil)
	if v != 0.07 {
		t.Errorf("AttrValue after update = %v", v)
	}
}

func TestEstimateBytesGrowsWithHandlers(t *testing.T) {
	plain := NewMap(Options{})
	active := NewMap(Options{})
	script := `
		AA = {Password = "secret"}
		function onGet(caller, pw)
			if pw == AA.Password then return NodeId end
			return nil
		end
	`
	for i := 0; i < 100; i++ {
		name := "attr" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('0'+i/10))
		plain.Set(name, i)
		active.Set(name, i)
		if err := active.Attach(name, script); err != nil {
			t.Fatal(err)
		}
	}
	p, a := plain.EstimateBytes(), active.EstimateBytes()
	if a <= p {
		t.Fatalf("active map (%d B) should cost more than plain (%d B)", a, p)
	}
	if a > 20*p {
		t.Fatalf("active map overhead implausibly large: %d vs %d", a, p)
	}
}

func TestInvokeUnknownHandlerUnhandled(t *testing.T) {
	m := NewMap(Options{})
	m.Set("x", 1)
	if err := m.Attach("x", `function onGet(c) return 1 end`); err != nil {
		t.Fatal(err)
	}
	res, err := m.Invoke("x", HandlerDeliver, "admin", nil)
	if err != nil || res.Handled {
		t.Fatalf("missing handler should be unhandled: %+v %v", res, err)
	}
}

func TestHashedPasswordPolicy(t *testing.T) {
	// The paper's Fig. 5 enhanced with the sketched "encryption
	// primitives": the AA stores only the hash of the password.
	m := NewMap(Options{NodeID: "node-9", Site: "virginia"})
	m.Set("GPU", true)
	err := m.Attach("GPU", `
		AA = {PasswordHash = sha256hex("s3cret")}
		function onGet(caller, password)
			if type(password) == "string" and sha256hex(password) == AA.PasswordHash then
				return NodeId
			end
			return nil
		end
	`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.OnGet("GPU", "joe", "s3cret"); v != "node-9" {
		t.Errorf("correct password rejected: %v", v)
	}
	if v, _ := m.OnGet("GPU", "joe", "guess"); v != nil {
		t.Errorf("wrong password accepted: %v", v)
	}
	if v, _ := m.OnGet("GPU", "joe", 42); v != nil {
		t.Errorf("non-string payload accepted: %v", v)
	}
}

func TestEd25519SignaturePolicy(t *testing.T) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMap(Options{NodeID: "node-5", Site: "tokyo"})
	m.Set("GPU", true)
	// The AA stores the customer's public key; the query authenticates by
	// signing its own caller name (paper: "the node's AA stores the public
	// key, and the query authenticates itself by presenting the
	// corresponding private key").
	script := `
		AA = {PubKey = "` + hex.EncodeToString(pub) + `"}
		function onGet(caller, signature)
			if type(signature) == "string" and ed25519_verify(AA.PubKey, caller, signature) then
				return NodeId
			end
			return nil
		end
	`
	if err := m.Attach("GPU", script); err != nil {
		t.Fatal(err)
	}
	sig := hex.EncodeToString(ed25519.Sign(priv, []byte("joe")))
	if v, _ := m.OnGet("GPU", "joe", sig); v != "node-5" {
		t.Errorf("valid signature rejected: %v", v)
	}
	// Same signature presented by a different caller fails (it signs the
	// caller identity).
	if v, _ := m.OnGet("GPU", "mallory", sig); v != nil {
		t.Errorf("replayed signature accepted for wrong caller: %v", v)
	}
	if v, _ := m.OnGet("GPU", "joe", "deadbeef"); v != nil {
		t.Errorf("garbage signature accepted: %v", v)
	}
}

func TestHmacHostFunction(t *testing.T) {
	m := NewMap(Options{})
	m.Set("x", 1)
	if err := m.Attach("x", `
		function onGet(caller, payload)
			return hmac_sha256("key", "message")
		end
	`); err != nil {
		t.Fatal(err)
	}
	v, err := m.OnGet("x", "c", nil)
	if err != nil {
		t.Fatal(err)
	}
	mac := hmac.New(sha256.New, []byte("key"))
	mac.Write([]byte("message"))
	if v != hex.EncodeToString(mac.Sum(nil)) {
		t.Errorf("hmac mismatch: %v", v)
	}
}

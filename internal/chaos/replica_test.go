package chaos

import (
	"fmt"
	"testing"
	"time"
)

// rootCrashScenario is the scripted replication scenario: a loaded GPU
// tree under continuous utilization churn loses its root mid-run, once
// while a cross-site partition is standing (so the promotion and the
// eventual heal both get exercised), and once in the clear. The
// aggregate-continuity watch runs inside each CrashRoot step; the
// quiescent replica-consistency checker then asserts the healed
// federation converged to exactly one root per tree.
func rootCrashScenario(seed int64) Scenario {
	return Scenario{
		Name:     fmt.Sprintf("root-crash-%d", seed),
		Seed:     seed,
		AggSlack: 2,
		// Outlast the partition window's failure tombstones (30s) so
		// re-learning completes before the quiescent suite.
		Settle: 45 * time.Second,
		Steps: []Step{
			{At: 1 * time.Second, Kind: Partition, Site: "virginia", Peer: "tokyo"},
			{At: 3 * time.Second, Kind: CrashRoot, Site: "virginia", Tree: "GPU"},
			{At: 9 * time.Second, Kind: Heal, Site: "virginia", Peer: "tokyo"},
			{At: 11 * time.Second, Kind: CrashRoot, Site: "tokyo", Tree: "util<50%"},
		},
	}
}

// TestRootCrashReplicaPromotes runs the scripted scenario once: the
// replica must promote with aggregates continuous, and the quiescent
// suite (including replica-consistency) must pass clean.
func TestRootCrashReplicaPromotes(t *testing.T) {
	res, err := Run(rootCrashScenario(11), Options{Sites: smokeSites, NodesPerSite: 8, Churn: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	if got := res.Counters.Get("faults.crashroot"); got == 0 {
		t.Error("no root was crashed (both CrashRoot steps skipped)")
	}
	if got := res.Counters.Get("checks.continuity"); got == 0 {
		t.Error("aggregate-continuity watch never armed")
	}
	if got := res.Counters.Get("checks.replicas"); got == 0 {
		t.Error("replica-consistency checker never ran")
	}
	if got := res.Metrics.Counters["scribe_root_promotions_total"]; got == 0 {
		t.Error("no replica ever promoted: crashes were absorbed without the replication path")
	}
}

// TestRootCrashCampaign sweeps the root-crash schedule across seeds:
// every seed must pass with zero violations — in particular zero
// aggregate-continuity violations, the regression the root replication
// protocol exists to prevent. Full mode runs 50 seeds (the acceptance
// gate); -short keeps a deterministic 6-seed slice for CI smoke.
func TestRootCrashCampaign(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			scn := Scenario{
				Name:     fmt.Sprintf("root-crash-campaign-%d", seed),
				Seed:     seed,
				AggSlack: 2,
				Steps: []Step{
					{At: 1 * time.Second, Kind: CrashRoot, Site: "virginia", Tree: "GPU"},
					{At: 7 * time.Second, Kind: CrashRoot, Site: "tokyo", Tree: "util<50%"},
					{At: 13 * time.Second, Kind: Crash, Site: "virginia"},
				},
			}
			res, err := Run(scn, Options{Sites: smokeSites, NodesPerSite: 8, Churn: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Error(v)
			}
		})
	}
}

package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"rbay/internal/core"
	"rbay/internal/ids"
	"rbay/internal/metrics"
	"rbay/internal/monitor"
	"rbay/internal/naming"
	"rbay/internal/pastry"
	"rbay/internal/scribe"
	"rbay/internal/simnet"
	"rbay/internal/store"
	"rbay/internal/transport"
)

// probeAppName is the Pastry application the harness registers on every
// node for routing-convergence probes.
const probeAppName = "chaos.probe"

// ChaosPassword is the password the harness's policy scripts expect and
// the queryability checker presents.
const ChaosPassword = "chaos-pw"

// Options configures the federation under test.
type Options struct {
	// Sites lists participating sites. Default: virginia and tokyo.
	Sites []string
	// NodesPerSite is the per-site agent count. Default 20.
	NodesPerSite int
	// Node overrides the per-node configuration; the zero value takes
	// chaos-tuned fast defaults (short intervals, liveness probing on).
	Node *core.Config
	// Registry overrides the tree catalog. Default: DefaultRegistry.
	Registry *naming.Registry
	// Log, when non-nil, receives each event-log line as it is emitted;
	// the full log is always collected in the Result.
	Log io.Writer
	// Churn arms a seeded utilization random walk on every node, feeding
	// the attribute map once per virtual second like a monitoring agent.
	Churn bool
	// Passwords attaches an onGet password policy to the GPU attribute of
	// the last site's GPU nodes; the queryability checker presents the
	// password.
	Passwords bool
	// PlantStep, when ≥ 1, covertly closes one node right after the
	// (1-based) step with that index is applied, without recording the
	// crash in the harness's bookkeeping — a deliberately planted
	// invariant violation used to validate the checkers themselves.
	PlantStep int
	// Durable backs every node with a crash-consistent virtual disk
	// (store.MemDir): crashes cut the disk at its synced watermark, and
	// restarts recover by snapshot+WAL replay and re-federation instead of
	// re-applying the layout. Arms the durability invariant — no
	// durably-posted resource permanently lost, no reservation
	// double-honored across crash/restart.
	Durable bool
	// Fsync is the durable nodes' fsync policy. Default store.SyncAlways.
	Fsync store.SyncPolicy
	// FsyncInterval is the SyncInterval period (see store.Options).
	FsyncInterval time.Duration
	// FsyncGroupWindow is the SyncGroup flush window (see store.Options).
	// Crash cuts stay on group boundaries regardless of the window: the
	// MemDir synced watermark only advances at the group's write+fsync.
	FsyncGroupWindow time.Duration
	// StoreFormat selects the WAL frame encoding (default binary). The
	// durable campaign also runs it as FormatJSON to prove crash
	// recovery of legacy-format dirs keeps working.
	StoreFormat store.Format
}

func (o Options) withDefaults() Options {
	if len(o.Sites) == 0 {
		o.Sites = []string{"virginia", "tokyo"}
	}
	if o.NodesPerSite <= 0 {
		o.NodesPerSite = 20
	}
	if o.Registry == nil {
		o.Registry = DefaultRegistry()
	}
	if o.Node == nil {
		cfg := DefaultNodeConfig()
		o.Node = &cfg
	}
	return o
}

// DefaultRegistry builds the harness's tree catalog: a GPU tree, two
// utilization threshold trees, and an instance-type tree (the same layout
// the core tests use).
func DefaultRegistry() *naming.Registry {
	r := naming.NewRegistry()
	r.MustDefine(naming.TreeDef{Name: "GPU", Pred: naming.Pred{Attr: "GPU", Op: naming.OpEq, Value: true}, Creator: "rbay"})
	r.MustDefine(naming.TreeDef{Name: "util<10%", Pred: naming.Pred{Attr: "CPU_utilization", Op: naming.OpLt, Value: 0.10}, Creator: "rbay"})
	r.MustDefine(naming.TreeDef{Name: "util<50%", Pred: naming.Pred{Attr: "CPU_utilization", Op: naming.OpLt, Value: 0.50}, Creator: "rbay"})
	r.MustDefine(naming.TreeDef{Name: "type=c3.large", Pred: naming.Pred{Attr: "instance_type", Op: naming.OpEq, Value: "c3.large"}, Creator: "rbay"})
	return r
}

// DefaultNodeConfig returns the chaos-tuned node configuration: short
// maintenance intervals so scenarios converge in seconds of virtual time,
// and Pastry liveness probing enabled so crashed peers are detected even
// without application traffic.
func DefaultNodeConfig() core.Config {
	return core.Config{
		Pastry: pastry.Config{
			ProbeInterval: time.Second,
			ProbeTimeout:  900 * time.Millisecond,
			RPCTimeout:    3 * time.Second,
		},
		Scribe: scribe.Config{
			AggregateInterval: 300 * time.Millisecond,
			AnycastTimeout:    5 * time.Second,
			AggQueryTimeout:   2 * time.Second,
			// The default warmup (3× the aggregate interval) is shorter than
			// failure detection plus children re-join under the second-scale
			// probe cadence above; stretch it so a promoted root serves its
			// snapshot until its own fold has caught up.
			ReplicaTTL: 2 * time.Second,
		},
		MembershipInterval: 500 * time.Millisecond,
		ReserveTTL:         3 * time.Second,
		BackoffSlot:        20 * time.Millisecond,
		SiteQueryTimeout:   4 * time.Second,
	}
}

// Violation is one invariant failure, carrying everything needed to
// reproduce it: the seed and the step trace up to the detection point.
type Violation struct {
	Checker string
	Detail  string
	// Step is the 1-based index of the last applied schedule step when the
	// violation was detected (0 = before any step).
	Step  int
	Seed  int64
	Trace []string
}

func (v Violation) String() string {
	return fmt.Sprintf("invariant %s violated after step %d (seed %d): %s", v.Checker, v.Step, v.Seed, v.Detail)
}

// Result is the outcome of one harness run.
type Result struct {
	Scenario   Scenario
	Violations []Violation
	Counters   *metrics.CounterSet
	// Metrics merges every surviving node's metric registry (query rounds,
	// anycast visits, reservation releases, …) at quiescence. Virtual time
	// makes the values a pure function of the seed.
	Metrics metrics.Snapshot
	Net     simnet.Stats
	Log     []string
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// Harness drives one scenario against one simulated federation.
type Harness struct {
	scn  Scenario
	opts Options

	fed *core.Federation
	net *simnet.Network
	reg *naming.Registry
	rng *rand.Rand

	live    map[string]*core.Node // addr string → node
	down    map[string]transport.Addr
	planted map[string]bool
	degrade map[string]simnet.RuleID // site (or "") → degradation rule

	// Durable-mode state: each node's virtual disk and open store log, the
	// durably-synced baseline attributes the durability invariant defends,
	// and the committed leases restarted nodes re-hold (a candidate from
	// this map in any later query is a double-honored reservation).
	disks       map[string]*store.MemDir
	logs        map[string]*store.Log
	durableBase map[string]map[string]any
	leased      map[string]string // addr → committed query ID
	// restoredState keeps the store state each durable restart recovered,
	// keyed by node address; gateway scenarios feed State.Ops back into a
	// rebuilt ops engine the way cmd/rbayd does on boot.
	restoredState map[string]store.State

	counters   *metrics.CounterSet
	violations []Violation
	logLines   []string
	trace      []string
	start      time.Time
	stepIdx    int // 1-based index of the last applied step

	probeGot  map[uint64]ids.ID
	nextProbe uint64

	// churnOff silences the armed monitor feeds for the quiescent phase:
	// the invariant suite itself advances virtual time (routing probes,
	// aggregate queries), and live churn during those runs would keep
	// flapping tree membership — a node mid-join when checkTrees looks is
	// ongoing churn, not a violation.
	churnOff bool
}

// New builds the federation and settles it, ready for Run.
func New(scn Scenario, opts Options) (*Harness, error) {
	scn = scn.withDefaults()
	opts = opts.withDefaults()
	h := &Harness{
		scn:           scn,
		opts:          opts,
		reg:           opts.Registry,
		rng:           rand.New(rand.NewSource(scn.Seed)),
		live:          make(map[string]*core.Node),
		down:          make(map[string]transport.Addr),
		planted:       make(map[string]bool),
		degrade:       make(map[string]simnet.RuleID),
		disks:         make(map[string]*store.MemDir),
		logs:          make(map[string]*store.Log),
		durableBase:   make(map[string]map[string]any),
		leased:        make(map[string]string),
		restoredState: make(map[string]store.State),
		counters:      metrics.NewCounterSet(),
		probeGot:      make(map[uint64]ids.ID),
	}
	fedCfg := core.FedConfig{
		Sites:        opts.Sites,
		NodesPerSite: opts.NodesPerSite,
		Node:         *opts.Node,
		Seed:         scn.Seed,
		// Every chaos campaign round-trips each message through the binary
		// wire codec, so codec regressions fail fault-injection runs, not
		// just unit tests.
		WireRoundtrip: true,
	}
	if opts.Durable {
		fedCfg.StoreFor = func(addr transport.Addr) core.Store {
			dir := store.NewMemDir()
			l, _, err := store.Open(dir, h.storeOpts())
			if err != nil {
				return nil
			}
			h.disks[addr.String()] = dir
			h.logs[addr.String()] = l
			return l
		}
	}
	fed, err := core.NewFederation(h.reg, fedCfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	h.fed = fed
	h.net = fed.Net
	h.net.SeedFaults(scn.Seed)
	for site, ns := range fed.BySite {
		for i, n := range ns {
			h.live[n.Addr().String()] = n
			h.applyLayout(n, site, i)
			if opts.Durable {
				h.recordDurableBase(n)
			}
			n.Pastry().Register(probeAppName, &probeApp{h: h})
			if opts.Churn {
				h.armChurn(n, h.globalIndex(site, i))
			}
		}
	}
	fed.Settle()
	if opts.Durable {
		// Force the baseline onto disk so the durability invariant holds
		// under every fsync policy: what it defends is exactly what was
		// durable before the schedule started.
		h.syncAllStores()
	}
	h.start = h.net.Now()
	return h, nil
}

// storeOpts maps the harness options onto the store's.
func (h *Harness) storeOpts() store.Options {
	return store.Options{
		Policy:      h.opts.Fsync,
		Interval:    h.opts.FsyncInterval,
		GroupWindow: h.opts.FsyncGroupWindow,
		Format:      h.opts.StoreFormat,
	}
}

// recordDurableBase snapshots the node's stable layout attributes — the
// ones nothing in a scenario legitimately changes — as the durability
// ground truth. CPU_utilization is deliberately absent: churn rewrites it
// continuously, so only its post-restart existence is checkable (it is
// re-posted either by replay or by the revived monitor feed).
func (h *Harness) recordDurableBase(n *core.Node) {
	base := make(map[string]any, 3)
	for _, name := range []string{"GPU", "instance_type", "mem_gb"} {
		if v, ok := n.Attributes().Get(name); ok {
			base[name] = v
		}
	}
	h.durableBase[n.Addr().String()] = base
}

// syncAllStores fsyncs every open store log, in deterministic order.
func (h *Harness) syncAllStores() {
	keys := make([]string, 0, len(h.logs))
	for k := range h.logs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		_ = h.logs[k].Sync()
	}
}

// Run applies the whole schedule and the invariant suite, returning the
// collected result. It never returns a partial result with a nil error.
func Run(scn Scenario, opts Options) (*Result, error) {
	h, err := New(scn, opts)
	if err != nil {
		return nil, err
	}
	return h.Run(), nil
}

// Federation exposes the federation under test (for tests building on the
// harness).
func (h *Harness) Federation() *core.Federation { return h.fed }

// Run executes the scenario: each step at its virtual-time offset with
// passive checks in between, then heal-all, settle, and the quiescent
// invariant suite.
func (h *Harness) Run() *Result {
	h.logf("setup name=%s sites=%d nodes-per-site=%d seed=%d steps=%d",
		h.scn.Name, len(h.opts.Sites), h.opts.NodesPerSite, h.scn.Seed, len(h.scn.Steps))

	steps := append([]Step(nil), h.scn.Steps...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
	for i, st := range steps {
		if target := h.start.Add(st.At); target.After(h.net.Now()) {
			h.net.RunUntil(target)
		}
		h.stepIdx = i + 1
		h.apply(st)
		if h.opts.PlantStep == i+1 {
			h.plant()
		}
		h.checkPassive()
	}

	// Quiescence: stop churn, remove every standing fault, let the plane
	// converge, then run the full invariant suite.
	h.churnOff = true
	h.net.HealAllPartitions()
	for site, id := range h.degrade {
		h.net.RemoveRule(id)
		delete(h.degrade, site)
	}
	h.logf("quiesce heal-all settle=%v", h.scn.Settle)
	h.net.RunFor(h.scn.Settle)
	h.checkQuiescent()

	st := h.net.Stats()
	h.counters.Add("net.sent", st.MessagesSent)
	h.counters.Add("net.delivered", st.MessagesDelivered)
	h.counters.Add("net.dropped", st.MessagesDropped)
	h.counters.Add("net.duplicated", st.MessagesDuplicated)
	h.counters.Add("net.jittered", st.MessagesJittered)
	h.counters.Add("net.reordered", st.MessagesReordered)
	merged := metrics.Snapshot{Counters: map[string]uint64{}, Histograms: map[string]metrics.HistSnapshot{}}
	for _, n := range h.liveSorted() {
		merged.Merge(n.Metrics().Snapshot())
	}
	h.logf("done live=%d down=%d violations=%d", len(h.live), len(h.down), len(h.violations))
	return &Result{
		Scenario:   h.scn,
		Violations: h.violations,
		Counters:   h.counters,
		Metrics:    merged,
		Net:        st,
		Log:        h.logLines,
	}
}

// ---------------------------------------------------------------------------
// Step application

func (h *Harness) apply(st Step) {
	count := st.Count
	if count <= 0 {
		count = 1
	}
	switch st.Kind {
	case Crash:
		for c := 0; c < count; c++ {
			h.crashOne(st.Site)
		}
	case Restart:
		for c := 0; c < count; c++ {
			h.restartOne(st.Site)
		}
	case CrashRoot:
		h.crashRootOf(st)
	case Partition:
		if st.Site == st.Peer || h.net.Partitioned(st.Site, st.Peer) {
			h.skip(st, "already partitioned or self-pair")
			return
		}
		h.net.PartitionSites(st.Site, st.Peer)
		h.counters.Inc("faults.partition")
		h.step(fmt.Sprintf("partition %s|%s", st.Site, st.Peer))
	case Heal:
		if !h.net.HealSites(st.Site, st.Peer) {
			h.skip(st, "not partitioned")
			return
		}
		h.counters.Inc("faults.heal")
		h.step(fmt.Sprintf("heal %s|%s", st.Site, st.Peer))
	case Degrade:
		if _, up := h.degrade[st.Site]; up {
			h.skip(st, "already degraded")
			return
		}
		r := st.Rule
		if st.Site != "" {
			r.Match = simnet.MatchSite(st.Site)
		}
		h.degrade[st.Site] = h.net.AddRule(r)
		h.counters.Inc("faults.degrade")
		h.step(fmt.Sprintf("degrade site=%s drop=%.2f dup=%.2f jitter=%v reorder=%.2f/%v",
			st.Site, r.Drop, r.Dup, r.Jitter, r.Reorder, r.ReorderWindow))
	case Undegrade:
		id, up := h.degrade[st.Site]
		if !up {
			h.skip(st, "not degraded")
			return
		}
		h.net.RemoveRule(id)
		delete(h.degrade, st.Site)
		h.counters.Inc("faults.undegrade")
		h.step(fmt.Sprintf("undegrade site=%s", st.Site))
	default:
		h.skip(st, "unknown step kind")
	}
}

func (h *Harness) crashOne(site string) {
	elig := h.crashEligible(site)
	if len(elig) == 0 {
		h.skip(Step{Kind: Crash, Site: site}, "no eligible node")
		return
	}
	n := elig[h.rng.Intn(len(elig))]
	key := n.Addr().String()
	_ = n.Close()
	if disk := h.disks[key]; disk != nil {
		// Power cut: the disk reverts to its synced watermark — whatever the
		// fsync policy had not yet made durable is gone, deterministically.
		disk.Crash()
	}
	delete(h.live, key)
	h.down[key] = n.Addr()
	h.counters.Inc("faults.crash")
	h.step(fmt.Sprintf("crash node=%s", key))
}

// crashRootOf crashes the live root of the step's named tree in its site,
// then immediately watches the tree's aggregate through the promotion
// window: the root's leaf-set replica must take over with the member
// count continuous. Safety floors match the random crash path — a root
// whose loss would sink the site degrades into a recorded skip.
func (h *Harness) crashRootOf(st Step) {
	def, ok := h.reg.Lookup(st.Tree)
	if !ok {
		h.skip(st, "unknown tree "+st.Tree)
		return
	}
	topic := h.reg.TopicFor(st.Site, def)
	var root *core.Node
	for _, n := range h.liveSite(st.Site) {
		if n.Scribe().Info(topic).IsRoot {
			root = n
			break
		}
	}
	if root == nil {
		h.skip(st, "no live root for tree "+st.Tree)
		return
	}
	eligible := false
	for _, n := range h.crashEligible(st.Site) {
		if n == root {
			eligible = true
			break
		}
	}
	if !eligible {
		h.skip(st, "root not crash-eligible")
		return
	}
	key := root.Addr().String()
	_ = root.Close()
	if disk := h.disks[key]; disk != nil {
		disk.Crash()
	}
	delete(h.live, key)
	h.down[key] = root.Addr()
	h.counters.Inc("faults.crashroot")
	h.step(fmt.Sprintf("crash-root tree=%s@%s node=%s", st.Tree, st.Site, key))
	h.watchAggregateContinuity(def, st.Site)
}

// crashEligible returns the site's live nodes whose crash keeps the site
// usable: at least two live nodes and one live boundary router survive.
func (h *Harness) crashEligible(site string) []*core.Node {
	liveSite := h.liveSite(site)
	if len(liveSite) <= 2 {
		return nil
	}
	liveRouters := 0
	routerAddr := make(map[string]bool)
	for _, r := range h.fed.Directory.Routers[site] {
		routerAddr[r.String()] = true
		if _, ok := h.live[r.String()]; ok {
			liveRouters++
		}
	}
	var out []*core.Node
	for _, n := range liveSite {
		key := n.Addr().String()
		if h.planted[key] {
			continue
		}
		if routerAddr[key] && liveRouters <= 1 {
			continue
		}
		out = append(out, n)
	}
	return out
}

func (h *Harness) restartOne(site string) {
	var downSite []transport.Addr
	for _, a := range h.down {
		if a.Site == site {
			downSite = append(downSite, a)
		}
	}
	if len(downSite) == 0 {
		h.skip(Step{Kind: Restart, Site: site}, "nothing down")
		return
	}
	sort.Slice(downSite, func(i, j int) bool { return downSite[i].String() < downSite[j].String() })
	addr := downSite[h.rng.Intn(len(downSite))]
	key := addr.String()

	cfg := *h.opts.Node
	var state store.State
	disk := h.disks[key]
	if disk != nil {
		l, st, err := store.Open(disk, h.storeOpts())
		if err != nil {
			h.violate("durability", fmt.Sprintf("node %s: store unreadable on restart: %v", key, err))
			h.skip(Step{Kind: Restart, Site: site}, "store open failed")
			return
		}
		cfg.Store = l
		h.logs[key] = l
		h.restoredState[key] = st
		state = st
	}
	n, err := core.New(h.net, addr, h.reg, cfg)
	if err != nil {
		h.skip(Step{Kind: Restart, Site: site}, "attach failed: "+err.Error())
		return
	}
	i := hostIndex(addr.Host)
	if disk != nil {
		// Durable restart: state comes from the disk, not from re-applying
		// the layout — losing anything durably posted is the bug class this
		// mode exists to catch.
		if err := n.Restore(state); err != nil {
			h.violate("durability", fmt.Sprintf("node %s: restore failed: %v", key, err))
		}
		h.checkRestoredFidelity(n)
		if r := state.Reservation; r != nil && r.Committed {
			h.leased[key] = r.QueryID
		}
	} else {
		h.applyLayout(n, site, i)
	}
	n.Pastry().Register(probeAppName, &probeApp{h: h})
	n.SetDirectory(h.fed.Directory)
	h.ensureJoined(n, site)
	if h.opts.Churn {
		h.armChurn(n, h.globalIndex(site, i))
	}
	delete(h.down, addr.String())
	h.live[addr.String()] = n
	h.counters.Inc("faults.restart")
	h.step(fmt.Sprintf("restart node=%s", addr.String()))
}

// ensureJoined (re)joins a revived node into the global and site scopes
// through a live same-site seed, retrying every couple of seconds until
// both joins take: a single join message can be lost while fault rules are
// active, and the base protocol does not retry it. Same-site seeds keep
// the bootstrap immune to cross-site partitions.
func (h *Harness) ensureJoined(n *core.Node, site string) {
	var ensure func()
	ensure = func() {
		p := n.Pastry()
		var seed *core.Node
		for _, s := range h.liveSite(site) {
			if s != n {
				seed = s
				break
			}
		}
		if seed != nil {
			if !p.Joined(pastry.GlobalScope) {
				_ = p.JoinGlobal(seed.Addr(), nil)
			}
			if !p.Joined(site) {
				_ = p.JoinSite(seed.Addr(), nil)
			}
		}
		if !p.Joined(pastry.GlobalScope) || !p.Joined(site) {
			p.After(2*time.Second, ensure)
			return
		}
		// Both scopes joined: complete the re-federation sequence now —
		// re-subscribe matching trees and push aggregates — instead of
		// waiting out the membership and aggregation intervals.
		n.Refederate()
	}
	ensure()
}

// checkRestoredFidelity asserts a durable restart recovered every
// durably-synced baseline attribute with its original value.
func (h *Harness) checkRestoredFidelity(n *core.Node) {
	key := n.Addr().String()
	base := h.durableBase[key]
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base[name]
		got, ok := n.Attributes().Get(name)
		if !ok || got != want {
			h.violate("durability",
				fmt.Sprintf("node %s: durably-posted %s=%v lost across restart (got %v, present=%v)",
					key, name, want, got, ok))
		}
	}
}

// plant covertly closes one eligible node without updating the live/down
// bookkeeping: the quiescent checkers must notice the lie.
func (h *Harness) plant() {
	for _, site := range h.sitesSorted() {
		elig := h.crashEligible(site)
		if len(elig) == 0 {
			continue
		}
		n := elig[h.rng.Intn(len(elig))]
		_ = n.Close()
		h.planted[n.Addr().String()] = true
		h.counters.Inc("faults.planted")
		h.step(fmt.Sprintf("plant covert-crash node=%s", n.Addr().String()))
		return
	}
	h.logf("plant skipped: no eligible node")
}

// ---------------------------------------------------------------------------
// Setup helpers

// applyLayout publishes the deterministic attribute layout node i of a site
// carries: GPU on every 4th node, a utilization ramp, an instance-type
// split, and (under Passwords) the last site's GPUs behind an onGet
// password policy.
func (h *Harness) applyLayout(n *core.Node, site string, i int) {
	n.SetAttribute("GPU", i%4 == 0)
	n.SetAttribute("CPU_utilization", float64(i%20)/20.0)
	if i%5 == 0 {
		n.SetAttribute("instance_type", "c3.large")
	} else {
		n.SetAttribute("instance_type", "t2.micro")
	}
	n.SetAttribute("mem_gb", float64(4+i%8))
	if h.opts.Passwords && i%4 == 0 && site == h.opts.Sites[len(h.opts.Sites)-1] {
		_ = n.AttachPolicy("GPU", `
			AA = {Password = "`+ChaosPassword+`"}
			function onGet(caller, password)
				if password == AA.Password then return NodeId end
				return nil
			end
		`)
	}
}

// armChurn drives the node's utilization with a seeded random walk ticking
// once per virtual second, like a site monitoring agent. The walk dies with
// the node's endpoint and is re-armed on restart. Updates go through the
// node's ingest queue — the same durable pipeline real monitor feeds use —
// so chaos scenarios exercise coalescing and batched WAL appends too.
func (h *Harness) armChurn(n *core.Node, idx int) {
	feed := monitor.NewFeed(h.scn.Seed*1000003 + int64(idx)*7)
	feed.Track("CPU_utilization", &monitor.Walk{Cur: float64(idx%20) / 20.0, Min: 0, Max: 1, Step: 0.1})
	var tick func()
	tick = func() {
		if h.churnOff {
			return
		}
		feed.TickInto(func(name string, v any) {
			_ = n.IngestEnqueue(name, v, "monitor", nil)
		})
		n.Pastry().After(time.Second, tick)
	}
	n.Pastry().After(time.Second, tick)
}

func (h *Harness) globalIndex(site string, i int) int {
	for s, name := range h.opts.Sites {
		if name == site {
			return s*h.opts.NodesPerSite + i
		}
	}
	return i
}

func hostIndex(host string) int {
	i, _ := strconv.Atoi(host[1:])
	return i
}

// ---------------------------------------------------------------------------
// Bookkeeping

func (h *Harness) liveSorted() []*core.Node {
	keys := make([]string, 0, len(h.live))
	for k := range h.live {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*core.Node, 0, len(keys))
	for _, k := range keys {
		out = append(out, h.live[k])
	}
	return out
}

func (h *Harness) liveSite(site string) []*core.Node {
	var out []*core.Node
	for _, n := range h.liveSorted() {
		if n.Site() == site {
			out = append(out, n)
		}
	}
	return out
}

func (h *Harness) sitesSorted() []string {
	out := append([]string(nil), h.opts.Sites...)
	sort.Strings(out)
	return out
}

// step logs a schedule event and appends it to the reproduction trace.
func (h *Harness) step(msg string) {
	line := h.logf("%s", msg)
	h.trace = append(h.trace, line)
}

func (h *Harness) skip(st Step, why string) {
	h.counters.Inc("faults.skipped")
	h.step(fmt.Sprintf("skip %s site=%s (%s)", st.Kind, st.Site, why))
}

// logf emits one event-log line stamped with the virtual-time offset from
// scenario start. Every value printed is deterministic, so two runs with
// the same seed produce byte-identical logs.
func (h *Harness) logf(format string, args ...any) string {
	d := h.net.Now().Sub(h.start)
	line := fmt.Sprintf("[t+%07.1fs] %s", d.Seconds(), fmt.Sprintf(format, args...))
	h.logLines = append(h.logLines, line)
	if h.opts.Log != nil {
		fmt.Fprintln(h.opts.Log, line)
	}
	return line
}

// violate records an invariant violation with the seed and step trace
// needed to reproduce it.
func (h *Harness) violate(checker, detail string) {
	v := Violation{
		Checker: checker,
		Detail:  detail,
		Step:    h.stepIdx,
		Seed:    h.scn.Seed,
		Trace:   append([]string(nil), h.trace...),
	}
	h.violations = append(h.violations, v)
	h.counters.Inc("checks.violations")
	h.logf("VIOLATION %s: %s", checker, detail)
}

// probeApp records routing-convergence probe deliveries.
type probeApp struct{ h *Harness }

func (p *probeApp) Deliver(n *pastry.Node, m *pastry.Message) {
	if tok, ok := m.Payload.(uint64); ok {
		p.h.probeGot[tok] = n.ID()
	}
}

func (p *probeApp) Forward(*pastry.Node, *pastry.Message, pastry.Entry) bool { return true }

func (p *probeApp) Direct(*pastry.Node, pastry.Entry, any) {}

package chaos

import (
	"testing"
)

// TestGatewayCrashSmoke runs one gateway-crash scenario and prints the
// terminal op log on failure. Short-mode: this is the gateway smoke tier.
func TestGatewayCrashSmoke(t *testing.T) {
	res, err := RunGatewayCrash(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.Submitted == 0 {
		t.Fatal("workload submitted no ops")
	}
	if res.Requeued == 0 {
		t.Error("crash landed after every op finished; requeued = 0 (seed no longer cuts mid-flight)")
	}
	if res.Failed() {
		for _, op := range res.Ops {
			t.Logf("op %s %s state=%s query=%s err=%s", op.ID, op.Kind, op.State, op.QueryID, op.Error)
		}
		for _, line := range res.Log {
			t.Log(line)
		}
	}
}

// TestGatewayCrashCampaign sweeps the gateway-crash scenario across 50
// seeds: the crash point slides through every phase of the op lifecycle,
// and the no-orphaned-reservation invariant must hold on all of them.
func TestGatewayCrashCampaign(t *testing.T) {
	const seeds = 50
	requeuedTotal, committedTotal := 0, 0
	for seed := int64(1); seed <= seeds; seed++ {
		res, err := RunGatewayCrash(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		requeuedTotal += res.Requeued
		committedTotal += res.Committed
		for _, v := range res.Violations {
			t.Errorf("seed %d: %v", seed, v)
		}
		if t.Failed() {
			for _, op := range res.Ops {
				t.Logf("seed %d: op %s %s state=%s query=%s err=%s", seed, op.ID, op.Kind, op.State, op.QueryID, op.Error)
			}
			t.FailNow()
		}
	}
	// The sweep is only meaningful if crashes actually interrupt work and
	// some commits survive to hold leases.
	if requeuedTotal == 0 {
		t.Error("no seed requeued an op after its crash — the campaign stopped cutting mid-flight")
	}
	if committedTotal == 0 {
		t.Error("no seed ended with a committed lease — the campaign stopped exercising the success path")
	}
	t.Logf("campaign: %d seeds, %d ops requeued after crash, %d committed leases at quiescence",
		seeds, requeuedTotal, committedTotal)
}

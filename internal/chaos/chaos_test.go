package chaos

import (
	"strings"
	"testing"
	"time"

	"rbay/internal/simnet"
)

var smokeSites = []string{"virginia", "tokyo"}

// smokeScenarios is one small scripted scenario per fault kind. Each runs
// in well under two seconds of wall clock (the federation is small and
// virtual time is cheap), so they all run in -short mode as the chaos
// suite's smoke tier.
func smokeScenarios() []Scenario {
	return []Scenario{
		{
			Name: "smoke-crash", Seed: 101,
			Steps: []Step{
				{At: 1 * time.Second, Kind: Crash, Site: "virginia"},
				{At: 2 * time.Second, Kind: Crash, Site: "tokyo", Count: 2},
			},
		},
		{
			Name: "smoke-restart", Seed: 102,
			Steps: []Step{
				{At: 1 * time.Second, Kind: Crash, Site: "virginia", Count: 2},
				{At: 4 * time.Second, Kind: Restart, Site: "virginia"},
				{At: 5 * time.Second, Kind: Restart, Site: "virginia"},
			},
		},
		{
			Name: "smoke-partition-heal", Seed: 103,
			// Tombstones from the partition window live failedTTL (30s);
			// settle must outlast them so re-learning completes.
			Settle: 45 * time.Second,
			Steps: []Step{
				{At: 1 * time.Second, Kind: Partition, Site: "virginia", Peer: "tokyo"},
				{At: 9 * time.Second, Kind: Heal, Site: "virginia", Peer: "tokyo"},
			},
		},
		{
			Name: "smoke-degrade", Seed: 104,
			Settle:   45 * time.Second,
			AggSlack: 1,
			Steps: []Step{
				{At: 1 * time.Second, Kind: Degrade, Site: "tokyo", Rule: simnet.Rule{
					Drop:          0.15,
					Dup:           0.10,
					Jitter:        40 * time.Millisecond,
					Reorder:       0.25,
					ReorderWindow: 150 * time.Millisecond,
				}},
				{At: 7 * time.Second, Kind: Undegrade, Site: "tokyo"},
			},
		},
	}
}

func TestSmokeScenarios(t *testing.T) {
	for _, scn := range smokeScenarios() {
		scn := scn
		t.Run(scn.Name, func(t *testing.T) {
			res, err := Run(scn, Options{Sites: smokeSites, NodesPerSite: 6})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Error(v)
			}
			if res.Counters.Get("checks.routing") == 0 {
				t.Error("quiescent checks never ran")
			}
		})
	}
}

// TestRandomCampaignDeterministicReplay pins the harness's core promise:
// the same seed replays the identical campaign, byte for byte, including
// every fault decision and every check outcome.
func TestRandomCampaignDeterministicReplay(t *testing.T) {
	run := func() []string {
		scn := RandomScenario(42, 15, smokeSites)
		scn.Settle = 45 * time.Second
		res, err := Run(scn, Options{Sites: smokeSites, NodesPerSite: 6, Churn: true, Passwords: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Log
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty event log")
	}
	if len(a) != len(b) {
		t.Fatalf("replay log length diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at line %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

// TestPlantedViolationDetectedAndReproduces validates the checkers
// themselves: a covert node kill the harness's bookkeeping does not know
// about must be flagged at quiescence, with the seed and step trace, and
// the failure must replay identically.
func TestPlantedViolationDetectedAndReproduces(t *testing.T) {
	run := func() *Result {
		scn := RandomScenario(7, 8, smokeSites)
		scn.Settle = 45 * time.Second
		res, err := Run(scn, Options{Sites: smokeSites, NodesPerSite: 6, PlantStep: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if !res.Failed() {
		t.Fatal("planted covert crash was not detected by any invariant checker")
	}
	v := res.Violations[0]
	if v.Seed != 7 {
		t.Errorf("violation seed = %d, want 7", v.Seed)
	}
	if v.Step == 0 {
		t.Error("violation carries no step index")
	}
	if len(v.Trace) == 0 {
		t.Error("violation carries no step trace")
	}
	planted := false
	for _, line := range v.Trace {
		if strings.Contains(line, "plant covert-crash") {
			planted = true
		}
	}
	if !planted {
		t.Error("step trace does not include the planted kill")
	}

	res2 := run()
	if len(res2.Violations) != len(res.Violations) {
		t.Fatalf("replay found %d violations, first run %d", len(res2.Violations), len(res.Violations))
	}
	for i := range res.Violations {
		if res.Violations[i].String() != res2.Violations[i].String() {
			t.Fatalf("violation %d differs between replays:\n  %s\n  %s",
				i, res.Violations[i], res2.Violations[i])
		}
	}
}

// TestCrashSafetyFloors checks the harness never crashes a site below two
// live nodes or its last live boundary router — over-aggressive schedules
// degrade into recorded skips instead.
func TestCrashSafetyFloors(t *testing.T) {
	var steps []Step
	for i := 0; i < 12; i++ {
		steps = append(steps, Step{At: time.Duration(i+1) * 500 * time.Millisecond, Kind: Crash, Site: "virginia"})
	}
	scn := Scenario{Name: "floors", Seed: 9, Steps: steps}
	h, err := New(scn, Options{Sites: smokeSites, NodesPerSite: 5})
	if err != nil {
		t.Fatal(err)
	}
	res := h.Run()
	liveVirginia := len(h.liveSite("virginia"))
	if liveVirginia < 2 {
		t.Fatalf("virginia left with %d live nodes, floor is 2", liveVirginia)
	}
	liveRouters := 0
	for _, r := range h.fed.Directory.Routers["virginia"] {
		if _, ok := h.live[r.String()]; ok {
			liveRouters++
		}
	}
	if liveRouters < 1 {
		t.Fatal("virginia left with no live boundary router")
	}
	if res.Counters.Get("faults.skipped") == 0 {
		t.Error("over-aggressive schedule recorded no skips")
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
}

// TestFederationStaysQueryableUnderChaos is the original core chaos test
// rebuilt on the harness: attribute churn, password policies, a router
// crash among a wave of failures — the plane must keep answering queries
// with live, non-double-allocated candidates. The heavier federation makes
// it a long-mode test; the smoke scenarios above cover -short.
func TestFederationStaysQueryableUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	scn := Scenario{
		Name: "queryable-under-chaos",
		Seed: 77,
		// One router is crash-eligible per site (the other is floor-kept),
		// plus steady worker attrition and a lossy spell.
		Steps: []Step{
			{At: 1 * time.Second, Kind: Crash, Site: "tokyo", Count: 2},
			{At: 2 * time.Second, Kind: Degrade, Site: "tokyo", Rule: simnet.Rule{
				Drop: 0.1, Dup: 0.05, Jitter: 60 * time.Millisecond,
				Reorder: 0.2, ReorderWindow: 200 * time.Millisecond,
			}},
			{At: 4 * time.Second, Kind: Crash, Site: "virginia", Count: 2},
			{At: 6 * time.Second, Kind: Crash, Site: "tokyo"},
			{At: 8 * time.Second, Kind: Undegrade, Site: "tokyo"},
			{At: 9 * time.Second, Kind: Restart, Site: "tokyo"},
		},
		Settle:   45 * time.Second,
		AggSlack: 2,
		Queries:  12,
	}
	res, err := Run(scn, Options{
		Sites:        smokeSites,
		NodesPerSite: 20,
		Churn:        true,
		Passwords:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	if got := res.Counters.Get("queries.issued"); got != 12 {
		t.Errorf("queries.issued = %d, want 12", got)
	}
	if got := res.Counters.Get("queries.nonempty"); got < 8 {
		t.Errorf("only %d/12 queries found anything", got)
	}
	if res.Counters.Get("faults.crash") != 5 {
		t.Errorf("faults.crash = %d, want 5", res.Counters.Get("faults.crash"))
	}
}

// TestHarnessCountersEmitted checks the harness reports its campaign
// through the metrics counter set: fault injections, invariant checks, and
// the network's fault statistics all land there.
func TestHarnessCountersEmitted(t *testing.T) {
	scn := smokeScenarios()[0]
	res, err := Run(scn, Options{Sites: smokeSites, NodesPerSite: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"faults.crash", "checks.passive", "checks.routing", "checks.leafsym",
		"checks.trees", "checks.aggregates", "checks.allocation", "checks.queryable",
		"net.sent", "net.delivered",
	} {
		if res.Counters.Get(name) == 0 {
			t.Errorf("counter %s = 0, want > 0", name)
		}
	}
	if render := res.Counters.Render(); !strings.Contains(render, "faults.crash") {
		t.Error("Render() does not list the fault counters")
	}
}

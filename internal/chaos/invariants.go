package chaos

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"rbay/internal/core"
	"rbay/internal/ids"
	"rbay/internal/naming"
	"rbay/internal/pastry"
	"rbay/internal/query"
	"rbay/internal/scribe"
)

// checkPassive runs the cheap structural checks that are safe to assert
// between schedule steps, while faults are still active and the protocols
// are mid-repair: a node must never list itself as its tree parent.
// (Stronger properties — symmetry, acyclicity, aggregate accuracy — are
// legitimately violated transiently during churn and are only asserted at
// quiescence.)
func (h *Harness) checkPassive() {
	h.counters.Inc("checks.passive")
	for _, n := range h.liveSorted() {
		if h.planted[n.Addr().String()] {
			continue
		}
		s := n.Scribe()
		for _, topic := range s.Topics() {
			info := s.Info(topic)
			if info.InTree && !info.IsRoot && info.Parent.ID == n.Pastry().ID() {
				h.violate("tree-parent-self",
					fmt.Sprintf("node %s is its own parent in topic %s", n.Addr(), topic.Short()))
			}
		}
	}
}

// checkQuiescent runs the full invariant suite after the schedule has
// drained, all faults are healed, and the federation has settled.
func (h *Harness) checkQuiescent() {
	h.checkRoutingConvergence()
	h.checkLeafSymmetry()
	h.checkTrees()
	h.checkReplicaConsistency()
	h.checkAggregates()
	h.checkNoDoubleAllocation()
	h.checkQueryable()
	h.checkDurability()
}

// scopes returns the overlay scopes to check: global plus one per site.
func (h *Harness) scopes() []string {
	return append([]string{pastry.GlobalScope}, h.sitesSorted()...)
}

// scopeNodes returns the live nodes that belong to a scope and report
// having joined it, in deterministic order.
func (h *Harness) scopeNodes(scope string) []*core.Node {
	var out []*core.Node
	for _, n := range h.liveSorted() {
		if scope != pastry.GlobalScope && n.Site() != scope {
			continue
		}
		if n.Pastry().Joined(scope) {
			out = append(out, n)
		}
	}
	return out
}

// await steps the simulation until *done or the timeout elapses.
func (h *Harness) await(done *bool, timeout time.Duration) bool {
	deadline := h.net.Now().Add(timeout)
	for !*done && h.net.Now().Before(deadline) {
		h.net.RunFor(50 * time.Millisecond)
	}
	return *done
}

// checkRoutingConvergence routes probe messages to random keys in every
// scope and asserts each is delivered to the live node whose ID is
// numerically closest to the key — Pastry's core routing correctness
// property.
func (h *Harness) checkRoutingConvergence() {
	h.counters.Inc("checks.routing")
	const probesPerScope = 6
	probes := 0
	for _, scope := range h.scopes() {
		nodes := h.scopeNodes(scope)
		if len(nodes) < 2 {
			continue
		}
		for p := 0; p < probesPerScope; p++ {
			key := ids.HashOf(fmt.Sprintf("chaos-probe/%d/%s/%d", h.scn.Seed, scope, p))
			origin := nodes[h.rng.Intn(len(nodes))]

			// The node that must receive the probe: closest live ID to key,
			// counting every node the harness believes is alive (a covertly
			// dead node in this set is exactly what the check must expose).
			want := h.closestLive(scope, key)

			token := h.nextProbe
			h.nextProbe++
			if err := origin.Pastry().RouteScoped(probeAppName, scope, key, token, false); err != nil {
				h.violate("routing-convergence",
					fmt.Sprintf("scope %q: route from %s failed: %v", scope, origin.Addr(), err))
				continue
			}
			delivered := false
			deadline := h.net.Now().Add(5 * time.Second)
			for !delivered && h.net.Now().Before(deadline) {
				h.net.RunFor(50 * time.Millisecond)
				_, delivered = h.probeGot[token]
			}
			probes++
			if !delivered {
				h.violate("routing-convergence",
					fmt.Sprintf("scope %q: probe to %s from %s never delivered", scope, key.Short(), origin.Addr()))
				continue
			}
			if got := h.probeGot[token]; got != want {
				h.violate("routing-convergence",
					fmt.Sprintf("scope %q: probe to %s delivered at %s, closest live node is %s",
						scope, key.Short(), got.Short(), want.Short()))
			}
		}
	}
	h.logf("check routing-convergence ok probes=%d", probes)
}

// closestLive returns the ID among the scope's live nodes numerically
// closest to key (ties to the smaller ID, matching routing).
func (h *Harness) closestLive(scope string, key ids.ID) ids.ID {
	var best ids.ID
	first := true
	for _, n := range h.scopeNodes(scope) {
		id := n.Pastry().ID()
		if first || id.CloserToThan(key, best) {
			best = id
			first = false
		}
	}
	return best
}

// checkLeafSymmetry asserts leaf-set convergence in every scope: with the
// scope's live members ring-sorted, each node's immediate ring successor
// and predecessor must appear in its leaf set. A converged Pastry overlay
// satisfies this, and it is what makes Covers/Closest — and therefore
// routing termination — correct.
func (h *Harness) checkLeafSymmetry() {
	h.counters.Inc("checks.leafsym")
	checked := 0
	for _, scope := range h.scopes() {
		nodes := h.scopeNodes(scope)
		if len(nodes) < 3 {
			continue
		}
		ring := append([]*core.Node(nil), nodes...)
		sort.Slice(ring, func(i, j int) bool { return ring[i].Pastry().ID().Less(ring[j].Pastry().ID()) })
		for i, n := range ring {
			succ := ring[(i+1)%len(ring)].Pastry()
			pred := ring[(i-1+len(ring))%len(ring)].Pastry()
			leaf := n.Pastry().Leaf(scope)
			if leaf == nil {
				h.violate("leaf-symmetry", fmt.Sprintf("scope %q: node %s has no leaf set", scope, n.Addr()))
				continue
			}
			checked++
			if !leaf.Contains(succ.ID()) {
				h.violate("leaf-symmetry",
					fmt.Sprintf("scope %q: node %s leaf set is missing ring successor %s (%s)",
						scope, n.Addr(), succ.ID().Short(), succ.Addr()))
			}
			if !leaf.Contains(pred.ID()) {
				h.violate("leaf-symmetry",
					fmt.Sprintf("scope %q: node %s leaf set is missing ring predecessor %s (%s)",
						scope, n.Addr(), pred.ID().Short(), pred.Addr()))
			}
		}
	}
	h.logf("check leaf-symmetry ok nodes=%d", checked)
}

// checkTrees validates every aggregation tree's shape: each in-tree
// non-root node has a live parent that lists it as a child (parent
// consistency), and following parent pointers terminates at the root
// without revisiting a node (acyclicity).
func (h *Harness) checkTrees() {
	h.counters.Inc("checks.trees")
	trees := 0
	for _, def := range h.sortedDefs() {
		for _, site := range h.sitesSorted() {
			topic := h.reg.TopicFor(site, def)
			members := make(map[ids.ID]*core.Node)
			for _, n := range h.liveSite(site) {
				if n.Scribe().Info(topic).InTree {
					members[n.Pastry().ID()] = n
				}
			}
			if len(members) == 0 {
				continue
			}
			trees++
			ids_ := make([]ids.ID, 0, len(members))
			for id := range members {
				ids_ = append(ids_, id)
			}
			sort.Slice(ids_, func(i, j int) bool { return ids_[i].Less(ids_[j]) })
			for _, id := range ids_ {
				n := members[id]
				info := n.Scribe().Info(topic)
				if info.IsRoot {
					continue
				}
				if info.Parent.IsZero() {
					h.violate("tree-parent-consistency",
						fmt.Sprintf("tree %s@%s: node %s is in the tree with no parent and is not root",
							def.Name, site, n.Addr()))
					continue
				}
				parent, live := h.live[info.Parent.Addr.String()]
				if !live || h.planted[info.Parent.Addr.String()] {
					h.violate("tree-parent-consistency",
						fmt.Sprintf("tree %s@%s: node %s's parent %s is dead",
							def.Name, site, n.Addr(), info.Parent.Addr))
					continue
				}
				childOK := false
				for _, c := range parent.Scribe().Children(topic) {
					if c.ID == id {
						childOK = true
						break
					}
				}
				if !childOK {
					h.violate("tree-parent-consistency",
						fmt.Sprintf("tree %s@%s: node %s claims parent %s, which does not list it as a child",
							def.Name, site, n.Addr(), info.Parent.Addr))
				}
			}
			// Acyclicity: every member's parent chain must reach the root in
			// at most |members| hops without revisiting anyone. A chain that
			// leaves the live member set was already flagged by the parent
			// consistency pass above, so the walk just stops there.
			for _, id := range ids_ {
				seen := map[ids.ID]bool{}
				cur := members[id]
				for hops := 0; cur != nil && hops <= len(members); hops++ {
					cid := cur.Pastry().ID()
					if seen[cid] {
						h.violate("tree-acyclicity",
							fmt.Sprintf("tree %s@%s: parent chain from %s revisits %s",
								def.Name, site, members[id].Addr(), cur.Addr()))
						break
					}
					seen[cid] = true
					info := cur.Scribe().Info(topic)
					if info.IsRoot {
						break
					}
					cur = members[info.Parent.ID]
				}
			}
		}
	}
	h.logf("check tree-shape ok trees=%d", trees)
}

// checkAggregates asserts each tree root's aggregate member count matches
// the ground truth — the number of live nodes whose attributes satisfy the
// tree predicate — within the scenario's staleness slack. Ground truth is
// sampled before and after the aggregate query so legitimate in-flight
// churn widens the accepted band instead of flaking.
func (h *Harness) checkAggregates() {
	h.counters.Inc("checks.aggregates")
	checked := 0
	for _, def := range h.sortedDefs() {
		for _, site := range h.sitesSorted() {
			issuers := h.liveSite(site)
			if len(issuers) == 0 {
				continue
			}
			pre := h.groundTruth(def, site)
			var got core.TreeStats
			var gotErr error
			done := false
			err := issuers[0].TreeStats(def.Name, func(st core.TreeStats, err error) {
				got, gotErr, done = st, err, true
			})
			if err != nil {
				h.violate("aggregate-correctness",
					fmt.Sprintf("tree %s@%s: aggregate query failed to start: %v", def.Name, site, err))
				continue
			}
			if !h.await(&done, 8*time.Second) {
				h.violate("aggregate-correctness",
					fmt.Sprintf("tree %s@%s: aggregate query never completed", def.Name, site))
				continue
			}
			post := h.groundTruth(def, site)
			if gotErr != nil {
				// A tree whose membership drained away is torn down
				// everywhere, so its rendezvous correctly answers "no such
				// tree" — that is the right outcome when ground truth is
				// (within slack of) empty, not a violation.
				if errors.Is(gotErr, scribe.ErrNoTree) && min(pre, post) <= h.scn.AggSlack {
					checked++
					continue
				}
				h.violate("aggregate-correctness",
					fmt.Sprintf("tree %s@%s: aggregate query failed: %v", def.Name, site, gotErr))
				continue
			}
			lo, hi := pre, post
			if lo > hi {
				lo, hi = hi, lo
			}
			lo -= h.scn.AggSlack
			hi += h.scn.AggSlack
			checked++
			if got.Count < lo || got.Count > hi {
				h.violate("aggregate-correctness",
					fmt.Sprintf("tree %s@%s: root aggregate count %d, ground truth %d..%d (slack %d)",
						def.Name, site, got.Count, pre, post, h.scn.AggSlack))
			}
		}
	}
	h.logf("check aggregate-correctness ok trees=%d", checked)
}

// watchAggregateContinuity samples a tree's root aggregate repeatedly
// through the promotion window right after its root crashed. The
// replication contract (docs/VIEWS.md): a leaf-set replica promotes and
// serves the replicated snapshot, so successful probes stay within the
// staleness slack of the live member count — in particular a solidly
// populated tree must never read as empty (the subtree re-join storm
// regression) — and the tree must not go silent for the whole window.
func (h *Harness) watchAggregateContinuity(def *naming.TreeDef, site string) {
	h.counters.Inc("checks.continuity")
	issuers := h.liveSite(site)
	if len(issuers) == 0 {
		return
	}
	pre := h.groundTruth(def, site)
	if pre == 0 {
		return // empty tree: nothing to keep continuous
	}
	const samples = 8
	successes := 0
	for i := 0; i < samples; i++ {
		h.net.RunFor(500 * time.Millisecond)
		issuer := issuers[h.rng.Intn(len(issuers))]
		var got core.TreeStats
		var gotErr error
		done := false
		err := issuer.TreeStats(def.Name, func(st core.TreeStats, err error) {
			got, gotErr, done = st, err, true
		})
		if err != nil || !h.await(&done, 3*time.Second) || gotErr != nil {
			// A probe lost mid-repair (routed at the dead root before the
			// leaf sets healed) is tolerated; total silence is judged below.
			continue
		}
		successes++
		post := h.groundTruth(def, site)
		lo, hi := pre, post
		if lo > hi {
			lo, hi = hi, lo
		}
		// +2 over the scenario slack: the crashed root's own membership and
		// one in-flight child update may still be folded into the snapshot.
		slack := h.scn.AggSlack + 2
		lo -= slack
		hi += slack
		// The never-reads-as-empty assertion only holds for a tree that is
		// solidly populated through the window (lo still ≥ 1 after slack).
		// A near-empty tree under threshold churn can legitimately fold to
		// zero: its last member unsubscribes when its utilization crosses
		// the predicate, and ground truth re-admitting it is visible to the
		// tree only after the membership lag — no snapshot can report a
		// member that left.
		if lo < 0 {
			lo = 0
		}
		if got.Count < lo || got.Count > hi {
			h.violate("aggregate-continuity",
				fmt.Sprintf("tree %s@%s: aggregate %d outside %d..%d during promotion window (sample %d/%d)",
					def.Name, site, got.Count, lo, hi, i+1, samples))
		}
		pre = post
	}
	if successes == 0 {
		h.violate("aggregate-continuity",
			fmt.Sprintf("tree %s@%s: no aggregate probe succeeded across the %d-sample promotion window",
				def.Name, site, samples))
		return
	}
	h.logf("check aggregate-continuity ok tree=%s@%s samples=%d/%d", def.Name, site, successes, samples)
}

// checkReplicaConsistency asserts, at quiescence, that every populated
// tree has exactly one root among its live members: a promotion race or a
// healed partition must converge — via the epoch/root-claim protocol — to
// a single root incarnation, never two nodes both answering probes and
// never none.
func (h *Harness) checkReplicaConsistency() {
	h.counters.Inc("checks.replicas")
	trees := 0
	for _, def := range h.sortedDefs() {
		for _, site := range h.sitesSorted() {
			topic := h.reg.TopicFor(site, def)
			var roots []string
			members := 0
			for _, n := range h.liveSite(site) {
				if h.planted[n.Addr().String()] {
					continue
				}
				info := n.Scribe().Info(topic)
				if info.InTree {
					members++
				}
				if info.IsRoot {
					roots = append(roots, n.Addr().String())
				}
			}
			if members == 0 {
				continue
			}
			trees++
			switch {
			case len(roots) == 0:
				h.violate("replica-consistency",
					fmt.Sprintf("tree %s@%s: %d members but no live root", def.Name, site, members))
			case len(roots) > 1:
				h.violate("replica-consistency",
					fmt.Sprintf("tree %s@%s: double promotion, %d concurrent roots: %v",
						def.Name, site, len(roots), roots))
			}
		}
	}
	h.logf("check replica-consistency ok trees=%d", trees)
}

// groundTruth counts the site's live nodes whose current attribute values
// satisfy the tree predicate.
func (h *Harness) groundTruth(def *naming.TreeDef, site string) int64 {
	var count int64
	for _, n := range h.liveSite(site) {
		if v, ok := n.Attributes().Get(def.Pred.Attr); ok && def.Pred.Eval(v) {
			count++
		}
	}
	return count
}

// checkNoDoubleAllocation issues concurrent k-node queries over the same
// predicate and asserts the reservation protocol hands no node to two
// queries at once (the paper's lock-on-visit guarantee).
func (h *Harness) checkNoDoubleAllocation() {
	h.counters.Inc("checks.allocation")
	issuers := h.liveSorted()
	if len(issuers) < 3 {
		h.logf("check no-double-allocation skipped: too few nodes")
		return
	}
	q := query.MustParse(`SELECT 4 FROM * WHERE CPU_utilization < 50%;`)
	const concurrent = 3
	results := make([]core.QueryResult, concurrent)
	done := make([]bool, concurrent)
	picked := make([]*core.Node, concurrent)
	for i := 0; i < concurrent; i++ {
		picked[i] = issuers[h.rng.Intn(len(issuers))]
	}
	for i := 0; i < concurrent; i++ {
		i := i
		picked[i].Query(q, func(r core.QueryResult) {
			results[i] = r
			done[i] = true
		})
	}
	allDone := func() bool {
		for _, d := range done {
			if !d {
				return false
			}
		}
		return true
	}
	deadline := h.net.Now().Add(30 * time.Second)
	for !allDone() && h.net.Now().Before(deadline) {
		h.net.RunFor(100 * time.Millisecond)
	}
	if !allDone() {
		h.violate("no-double-allocation", "concurrent queries never completed")
		return
	}
	holders := make(map[string]int) // candidate addr → query index
	for i, r := range results {
		for _, c := range r.Candidates {
			key := c.Addr.String()
			if prev, dup := holders[key]; dup {
				h.violate("no-double-allocation",
					fmt.Sprintf("node %s allocated to two concurrent queries (%d and %d)", key, prev, i))
			}
			if lease, held := h.leased[key]; held {
				h.violate("no-double-allocation",
					fmt.Sprintf("node %s handed to query %d while re-holding committed lease %q across restart",
						key, i, lease))
			}
			holders[key] = i
		}
	}
	for i, r := range results {
		picked[i].Release(r.QueryID, r.Candidates)
	}
	h.net.RunFor(time.Second)
	h.logf("check no-double-allocation ok queries=%d candidates=%d", concurrent, len(holders))
}

// checkQueryable issues a stream of end-to-end composite queries — GPU
// lookups through the password policy and utilization threshold lookups —
// from rotating issuers, asserting the plane answers and never hands out a
// dead node.
func (h *Harness) checkQueryable() {
	h.counters.Inc("checks.queryable")
	issuers := h.liveSorted()
	if len(issuers) == 0 {
		h.violate("queryability", "no live nodes")
		return
	}
	gpuQ := query.MustParse(`SELECT 2 FROM * WHERE GPU = true;`)
	utilQ := query.MustParse(`SELECT 3 FROM * WHERE CPU_utilization < 50%;`)
	withCandidates := 0
	for round := 0; round < h.scn.Queries; round++ {
		issuer := issuers[h.rng.Intn(len(issuers))]
		q := gpuQ
		payload := any(ChaosPassword)
		if round%2 == 0 {
			q, payload = utilQ, nil
		}
		var res core.QueryResult
		done := false
		issuer.QueryAs(q, "chaos", payload, func(r core.QueryResult) {
			res = r
			done = true
		})
		if !h.await(&done, 30*time.Second) {
			h.violate("queryability", fmt.Sprintf("round %d: query from %s never completed", round, issuer.Addr()))
			continue
		}
		if len(res.Candidates) > 0 {
			withCandidates++
		}
		for _, c := range res.Candidates {
			if _, live := h.live[c.Addr.String()]; !live || h.planted[c.Addr.String()] {
				h.violate("queryability",
					fmt.Sprintf("round %d: query returned dead node %s", round, c.Addr))
			}
			if lease, held := h.leased[c.Addr.String()]; held {
				h.violate("queryability",
					fmt.Sprintf("round %d: node %s handed out while re-holding committed lease %q across restart",
						round, c.Addr, lease))
			}
		}
		issuer.Release(res.QueryID, res.Candidates)
		h.net.RunFor(500 * time.Millisecond)
	}
	h.counters.Add("queries.issued", uint64(h.scn.Queries))
	h.counters.Add("queries.nonempty", uint64(withCandidates))
	if withCandidates < (h.scn.Queries+1)/2 {
		h.violate("queryability",
			fmt.Sprintf("plane went dark: only %d/%d queries found any candidate", withCandidates, h.scn.Queries))
	}
	h.logf("check queryability ok nonempty=%d/%d", withCandidates, h.scn.Queries)
}

// checkDurability asserts, at quiescence, that nothing durably posted
// before the schedule started was permanently lost: every live
// store-backed node still carries its durably-synced baseline attributes,
// and every committed lease restored from disk is still held by exactly
// the reservation that was committed. (Double-honoring — the leased node
// appearing as a fresh candidate — is caught by the query checkers; this
// check catches the lease being silently dropped.)
func (h *Harness) checkDurability() {
	if !h.opts.Durable {
		return
	}
	h.counters.Inc("checks.durability")
	nodes := 0
	for _, n := range h.liveSorted() {
		key := n.Addr().String()
		if h.planted[key] {
			continue
		}
		base, ok := h.durableBase[key]
		if !ok {
			continue
		}
		nodes++
		names := make([]string, 0, len(base))
		for name := range base {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			want := base[name]
			got, present := n.Attributes().Get(name)
			if !present || got != want {
				h.violate("durability",
					fmt.Sprintf("node %s: durably-posted %s=%v lost at quiescence (got %v, present=%v)",
						key, name, want, got, present))
			}
		}
	}
	leaseKeys := make([]string, 0, len(h.leased))
	for k := range h.leased {
		leaseKeys = append(leaseKeys, k)
	}
	sort.Strings(leaseKeys)
	for _, key := range leaseKeys {
		n, live := h.live[key]
		if !live {
			continue // crashed again after the restore; nothing to assert
		}
		q, committed, held := n.Reserved()
		if !held || !committed || q != h.leased[key] {
			h.violate("durability",
				fmt.Sprintf("node %s: committed lease %q restored from disk but no longer held (%q committed=%v held=%v)",
					key, h.leased[key], q, committed, held))
		}
	}
	h.logf("check durability ok nodes=%d leases=%d", nodes, len(leaseKeys))
}

// sortedDefs returns the registry's tree definitions sorted by name.
func (h *Harness) sortedDefs() []*naming.TreeDef {
	defs := h.reg.Defs()
	sort.Slice(defs, func(i, j int) bool { return defs[i].Name < defs[j].Name })
	return defs
}

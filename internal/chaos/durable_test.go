package chaos

import (
	"testing"
	"time"

	"rbay/internal/store"
)

// durableSmoke is the scripted restart-with-disk scenario: one crash and
// one recovery per site, with enough settle for re-federation.
func durableSmoke(seed int64) Scenario {
	return Scenario{
		Name: "durable-restart", Seed: seed,
		Steps: []Step{
			{At: 1 * time.Second, Kind: Crash, Site: "virginia"},
			{At: 2 * time.Second, Kind: Crash, Site: "tokyo"},
			{At: 5 * time.Second, Kind: Restart, Site: "virginia"},
			{At: 6 * time.Second, Kind: Restart, Site: "tokyo"},
		},
	}
}

// TestDurableRestartSmoke: disk-backed nodes crash and recover from their
// stores under every fsync policy; the durability invariant must hold —
// nothing durably posted before the schedule is lost, and restored nodes
// answer queries again. Short-mode: this is the chaos-restart smoke tier.
func TestDurableRestartSmoke(t *testing.T) {
	policies := []struct {
		name string
		opts Options
	}{
		{"always", Options{Durable: true, Fsync: store.SyncAlways}},
		{"interval", Options{Durable: true, Fsync: store.SyncInterval, FsyncInterval: 200 * time.Millisecond}},
		{"never", Options{Durable: true, Fsync: store.SyncNever}},
		{"group", Options{Durable: true, Fsync: store.SyncGroup, FsyncGroupWindow: 100 * time.Microsecond}},
		// Legacy-format dirs must survive the same crash schedule: the
		// binary decoder's per-frame JSON fallback is what restarts read.
		{"json-legacy", Options{Durable: true, Fsync: store.SyncAlways, StoreFormat: store.FormatJSON}},
	}
	for _, p := range policies {
		p := p
		t.Run(p.name, func(t *testing.T) {
			opts := p.opts
			opts.Sites = smokeSites
			opts.NodesPerSite = 6
			opts.Passwords = true
			res, err := Run(durableSmoke(201), opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Error(v)
			}
			if got := res.Counters.Get("faults.restart"); got != 2 {
				t.Errorf("faults.restart = %d, want 2", got)
			}
			if res.Counters.Get("checks.durability") == 0 {
				t.Error("durability invariant never ran")
			}
		})
	}
}

// TestCrashMidCommitLeaseReArmed replays the torn-commit schedule: a node
// durably records a reservation, the commit record is still in the disk's
// write cache when the power cuts. On restart the lease must come back
// re-armed but uncommitted — still blocking competing reservations until
// its stored expiry — and must never count as a committed hand-out. A
// second node whose commit *did* reach the platter must re-hold the
// committed lease and never be handed out again.
func TestCrashMidCommitLeaseReArmed(t *testing.T) {
	h, err := New(Scenario{Name: "mid-commit", Seed: 202}, Options{
		Sites: smokeSites, NodesPerSite: 6, Durable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	crashPlant := func(site, query string, commitSynced bool) string {
		h.crashOne(site)
		var key string
		for k, a := range h.down {
			if a.Site == site {
				key = k
			}
		}
		if key == "" {
			t.Fatalf("no %s node down after crashOne", site)
		}
		// Re-create the moment of failure on the dead node's disk: the
		// reservation reached the platter, the commit may not have.
		l, _, err := store.Open(h.disks[key], store.Options{Policy: store.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		l.RecordReserve(query, h.net.Now().Add(time.Hour))
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		l.RecordCommit(query)
		if commitSynced {
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		h.disks[key].Crash() // power cut: unsynced commit torn away
		return key
	}
	torn := crashPlant("virginia", "mid-q", false)
	held := crashPlant("tokyo", "done-q", true)

	h.restartOne("virginia")
	h.restartOne("tokyo")
	h.net.RunFor(8 * time.Second)

	n, ok := h.live[torn]
	if !ok {
		t.Fatalf("%s not revived", torn)
	}
	if q, committed, reserved := n.Reserved(); !reserved || committed || q != "mid-q" {
		t.Fatalf("torn commit: lease = %q committed=%v reserved=%v, want mid-q re-armed uncommitted",
			q, committed, reserved)
	}
	if _, tracked := h.leased[torn]; tracked {
		t.Error("uncommitted lease tracked as committed by the harness")
	}
	if q, committed, reserved := h.live[held].Reserved(); !reserved || !committed || q != "done-q" {
		t.Fatalf("synced commit: lease = %q committed=%v reserved=%v, want done-q re-held committed",
			q, committed, reserved)
	}
	if h.leased[held] != "done-q" {
		t.Fatalf("harness not tracking the re-held committed lease: %v", h.leased)
	}

	// The full quiescent suite — including the query checkers that would
	// flag either lease being handed to a new query — must pass clean.
	h.net.RunFor(h.scn.Settle)
	h.checkQuiescent()
	for _, v := range h.violations {
		t.Error(v)
	}
}

// TestCorruptWALTailRestartRecovers: durable garbage at the end of a dead
// node's WAL — a torn frame the disk controller half-wrote — must not
// poison recovery: the restart replays every record before the tear and
// the fidelity check passes.
func TestCorruptWALTailRestartRecovers(t *testing.T) {
	h, err := New(Scenario{Name: "corrupt-tail", Seed: 203}, Options{
		Sites: smokeSites, NodesPerSite: 6, Durable: true, Passwords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.crashOne("virginia")
	var key string
	for k := range h.down {
		key = k
	}
	// A frame header promising 16 bytes, a bogus CRC, and 2 bytes of body.
	h.disks[key].AppendSynced(store.WALName,
		[]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x', 'y'})

	h.restartOne("virginia")
	h.net.RunFor(8 * time.Second)

	n, ok := h.live[key]
	if !ok {
		t.Fatalf("%s did not come back from a corrupt-tail disk", key)
	}
	for _, v := range h.violations {
		t.Error(v) // restartOne's fidelity check must not have fired
	}
	for name, want := range h.durableBase[key] {
		if got, present := n.Attributes().Get(name); !present || got != want {
			t.Errorf("%s=%v lost behind the torn tail (got %v, present=%v)", name, want, got, present)
		}
	}
	// And the truncation is durable: the next open sees a clean log.
	h.disks[key].Crash()
	if _, _, err := store.Open(h.disks[key], store.Options{}); err != nil {
		t.Fatalf("WAL still poisoned after recovery: %v", err)
	}
}

// TestDurableCampaignDeterministicReplay extends the determinism promise
// to durable mode: disk contents, recovery, and re-federation are all a
// pure function of the seed.
func TestDurableCampaignDeterministicReplay(t *testing.T) {
	run := func() []string {
		scn := RandomScenario(42, 12, smokeSites)
		scn.Settle = 45 * time.Second
		res, err := Run(scn, Options{
			Sites: smokeSites, NodesPerSite: 6,
			Durable: true, Churn: true, Passwords: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Log
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty event log")
	}
	if len(a) != len(b) {
		t.Fatalf("replay log length diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at line %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

// Package chaos is a seeded, deterministic fault-injection harness for the
// simulated federation, plus a library of federation invariant checkers.
//
// A Scenario is a schedule of fault steps (crash, restart, partition, heal,
// degrade) at virtual-time offsets, replayed against a federation built on
// internal/simnet. The harness applies the schedule, runs cheap structural
// invariant checks between steps, and at quiescence runs the full checker
// suite: pastry leaf-set symmetry and routing convergence, scribe tree
// acyclicity and parent consistency, aggregate correctness within staleness
// bounds, and the core's no-double-allocation guarantee. Every decision —
// which node crashes, which probe keys route, which fault rules fire — is
// drawn from RNGs seeded off the scenario seed, so a failing campaign
// reproduces byte-for-byte from `-seed`.
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"rbay/internal/simnet"
)

// StepKind enumerates the fault schedule's step types.
type StepKind uint8

const (
	// Crash closes Count live nodes in Site (kept safe: at least two nodes
	// and one boundary router per site survive).
	Crash StepKind = iota + 1
	// Restart revives Count previously crashed nodes of Site at their old
	// addresses; they re-join the overlay through live seeds.
	Restart
	// Partition cuts all traffic between Site and Peer until healed.
	Partition
	// Heal removes the Site–Peer partition.
	Heal
	// Degrade installs the step's fault Rule on Site's cross-site traffic
	// (or on all traffic when Site is empty): probabilistic loss,
	// duplication, latency jitter, bounded reordering.
	Degrade
	// Undegrade removes Site's degradation rule.
	Undegrade
	// CrashRoot crashes the current root of the Tree aggregation tree in
	// Site (safety floors apply), then watches the tree's aggregate through
	// the promotion window: a leaf-set replica must take over with the
	// member count continuous — never collapsed to zero, never outside the
	// staleness slack (docs/VIEWS.md).
	CrashRoot
)

// String returns the step kind's log name.
func (k StepKind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	case Degrade:
		return "degrade"
	case Undegrade:
		return "undegrade"
	case CrashRoot:
		return "crash-root"
	default:
		return fmt.Sprintf("step(%d)", k)
	}
}

// Step is one scheduled fault.
type Step struct {
	// At is the step's virtual-time offset from scenario start.
	At   time.Duration
	Kind StepKind
	// Site targets Crash/Restart/Degrade/Undegrade, and is the first site
	// of Partition/Heal.
	Site string
	// Peer is the second site of Partition/Heal.
	Peer string
	// Count is how many nodes Crash/Restart affects. Default 1.
	Count int
	// Tree names the aggregation tree CrashRoot targets.
	Tree string
	// Rule carries Degrade's fault parameters; its Match field is replaced
	// by the harness with the site's matcher.
	Rule simnet.Rule
}

// Scenario is a replayable fault schedule plus checker tuning.
type Scenario struct {
	Name string
	// Seed drives every random decision of the run (federation latencies,
	// fault rules, node selection, probe sampling).
	Seed  int64
	Steps []Step
	// Settle is how long the federation runs fault-free after the last
	// step before the quiescent invariant suite. Default 12s.
	Settle time.Duration
	// AggSlack is the allowed |root aggregate − actual member count| in the
	// aggregate-correctness checker (staleness bound). Default 0; scenarios
	// with continuous attribute churn set it to tolerate in-flight updates.
	AggSlack int64
	// Queries is how many end-to-end queries the queryability checker
	// issues at quiescence. Default 6.
	Queries int
}

func (s Scenario) withDefaults() Scenario {
	if s.Name == "" {
		s.Name = "scenario"
	}
	if s.Settle <= 0 {
		s.Settle = 12 * time.Second
	}
	if s.Queries <= 0 {
		s.Queries = 6
	}
	return s
}

// RandomScenario generates a steps-long schedule from seed: a weighted mix
// of crashes, restarts, partitions, heals, and degradations spaced roughly
// a second apart. The same (seed, steps, sites) produce the identical
// schedule, so campaigns replay with one command.
func RandomScenario(seed int64, steps int, sites []string) Scenario {
	rng := rand.New(rand.NewSource(seed))
	scn := Scenario{
		Name: fmt.Sprintf("random-%d", seed),
		Seed: seed,
		// Randomized campaigns churn membership continuously; allow the
		// aggregate to lag by a few in-flight updates.
		AggSlack: 2,
	}
	at := time.Duration(0)
	for i := 0; i < steps; i++ {
		at += 500*time.Millisecond + time.Duration(rng.Int63n(int64(1500*time.Millisecond)))
		site := sites[rng.Intn(len(sites))]
		peer := sites[rng.Intn(len(sites))]
		st := Step{At: at, Site: site, Count: 1}
		switch roll := rng.Intn(100); {
		case roll < 25:
			st.Kind = Crash
		case roll < 30:
			// Target the root specifically: the promotion path gets coverage
			// in every random campaign, not just the scripted scenarios.
			st.Kind = CrashRoot
			st.Tree = "GPU"
		case roll < 50:
			st.Kind = Restart
		case roll < 65:
			st.Kind = Partition
			st.Peer = peer
		case roll < 80:
			st.Kind = Heal
			st.Peer = peer
		case roll < 93:
			st.Kind = Degrade
			st.Rule = simnet.Rule{
				Drop:          0.05 + 0.25*rng.Float64(),
				Dup:           0.2 * rng.Float64(),
				Jitter:        time.Duration(rng.Int63n(int64(200 * time.Millisecond))),
				Reorder:       0.2,
				ReorderWindow: 300 * time.Millisecond,
			}
		default:
			st.Kind = Undegrade
		}
		scn.Steps = append(scn.Steps, st)
	}
	return scn
}

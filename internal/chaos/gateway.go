package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"rbay/internal/ops"
)

// GatewayResult is the outcome of one gateway-crash run.
type GatewayResult struct {
	// Violations carries every invariant failure, reproducible from Seed.
	Violations []Violation
	Seed       int64
	// Submitted/Requeued/Committed count accepted ops, ops replayed from
	// the WAL after the crash, and committed leases at quiescence.
	Submitted int
	Requeued  int
	Committed int
	// Ops is the terminal op log from the restarted engine.
	Ops []Op
	Log []string
}

// Op mirrors ops.Op minimally for result reporting.
type Op struct {
	ID      string
	Kind    string
	State   string
	QueryID string
	Error   string
}

// Failed reports whether any invariant was violated.
func (r *GatewayResult) Failed() bool { return len(r.Violations) > 0 }

// gatewayOpsConfig is the chaos-tuned engine configuration: short step
// deadlines and backoff so a run converges in seconds of virtual time.
func gatewayOpsConfig() ops.Config {
	return ops.Config{
		Workers:     4,
		QueueMax:    64,
		StepTimeout: 2 * time.Second,
		RetryMax:    3,
		RetryBase:   100 * time.Millisecond,
		RetryCap:    time.Second,
	}
}

// RunGatewayCrash drives the gateway-crash scenario for one seed: a
// durable node hosts a pending-operations engine, a seeded workload of
// reserve ops and FromOp-bound commits is submitted with the simulation
// advancing a random slice between submissions, then the gateway node is
// power-cut mid-flight — between accepting operations and completing
// them — and restarted from its disk. The rebuilt engine replays the
// recovered op records (exactly what cmd/rbayd does on boot) and the run
// drives everything to quiescence before checking the crash-safety
// invariants:
//
//   - every accepted operation reaches a terminal state;
//   - every committed lease in the federation maps to a done commit op
//     (no orphaned reservation: nothing is held that no completed
//     operation accounts for);
//   - no rolled-back commit op left a committed lease behind;
//   - no uncommitted reservation survives past its TTL.
func RunGatewayCrash(seed int64) (*GatewayResult, error) {
	h, err := New(Scenario{Name: "gateway-crash", Seed: seed, Settle: 8 * time.Second},
		Options{Sites: []string{"virginia"}, NodesPerSite: 8, Durable: true})
	if err != nil {
		return nil, err
	}
	// A separate stream from the harness's own RNG: the workload shape
	// must not perturb fault-selection determinism elsewhere.
	rng := rand.New(rand.NewSource(seed ^ 0x5bd1e995))

	elig := h.crashEligible("virginia")
	if len(elig) == 0 {
		return nil, fmt.Errorf("chaos: no crash-eligible gateway node")
	}
	gw := elig[rng.Intn(len(elig))]
	key := gw.Addr().String()
	cfg := gatewayOpsConfig()
	cfg.Now = gw.Now
	eng := ops.NewEngine(gw, h.logs[key], cfg)

	// Seeded workload: reserve ops, each chased by a commit bound to it
	// via FromOp, with random slices of virtual time in between so the
	// crash lands at a different lifecycle phase every seed — some pairs
	// fully done, some with leases held but the commit still queued, some
	// with the reserve query itself mid-flight.
	submitted := 0
	nPairs := 3 + rng.Intn(3)
	for i := 0; i < nPairs; i++ {
		snap, err := eng.Submit(ops.Request{
			Kind:    ops.KindReserve,
			Tenant:  "chaos",
			IdemKey: fmt.Sprintf("job-%d", i),
			Query:   fmt.Sprintf("SELECT %d FROM virginia WHERE GPU = true;", 1+rng.Intn(2)),
		})
		if err != nil {
			continue
		}
		submitted++
		h.net.RunFor(time.Duration(rng.Int63n(int64(120 * time.Millisecond))))
		if _, err := eng.Submit(ops.Request{Kind: ops.KindCommit, FromOp: snap.ID, Tenant: "chaos"}); err == nil {
			submitted++
		}
		h.net.RunFor(time.Duration(rng.Int63n(int64(80 * time.Millisecond))))
	}

	// Power-cut the gateway between accept and completion.
	_ = gw.Close()
	h.disks[key].Crash()
	delete(h.live, key)
	h.down[key] = gw.Addr()
	h.counters.Inc("faults.crash")
	h.step("crash gateway node=" + key)
	h.net.RunFor(2 * time.Second)

	// Restart from disk and let it rejoin before the engine replays —
	// the same order cmd/rbayd uses (store → node restore → join →
	// engine restore).
	h.restartOne("virginia")
	n2, ok := h.live[key]
	if !ok {
		return nil, fmt.Errorf("chaos: gateway %s not revived", key)
	}
	h.net.RunFor(3 * time.Second)
	cfg2 := gatewayOpsConfig()
	cfg2.Now = n2.Now
	eng2 := ops.NewEngine(n2, h.logs[key], cfg2)
	requeued := eng2.Restore(h.restoredState[key].Ops)
	h.logf("gateway restore requeued=%d", requeued)

	// Drive the replayed ops to quiescence.
	deadline := h.net.Now().Add(60 * time.Second)
	for h.net.Now().Before(deadline) {
		if eng2.QueueDepth() == 0 {
			break
		}
		h.net.RunFor(500 * time.Millisecond)
	}
	// Let every uncommitted hold from half-done attempts expire, then
	// settle.
	h.net.RunFor(h.opts.Node.ReserveTTL + h.scn.Settle)

	h.checkGatewayOps(eng2)

	res := &GatewayResult{Seed: seed, Submitted: submitted, Requeued: requeued, Log: h.logLines}
	res.Violations = h.violations
	for _, op := range eng2.List() {
		res.Ops = append(res.Ops, Op{
			ID: op.ID, Kind: string(op.Kind), State: string(op.State),
			QueryID: op.QueryID, Error: op.Error,
		})
	}
	for _, n := range h.liveSorted() {
		if _, committed, held := n.Reserved(); held && committed {
			res.Committed++
		}
	}
	return res, nil
}

// checkGatewayOps is the gateway crash-safety invariant: run at
// quiescence, it asserts the engine's op log and the federation's leases
// tell one consistent story.
func (h *Harness) checkGatewayOps(eng *ops.Engine) {
	h.counters.Inc("checks.gatewayops")
	doneCommits := make(map[string]bool)
	rolledBack := make(map[string]string) // queryID → op ID
	for _, op := range eng.List() {
		if !op.State.Terminal() {
			h.violate("gateway-ops", fmt.Sprintf("op %s (%s) stuck in %s after quiescence", op.ID, op.Kind, op.State))
			continue
		}
		if op.Kind != ops.KindCommit || op.QueryID == "" {
			continue
		}
		switch op.State {
		case ops.StateDone:
			doneCommits[op.QueryID] = true
		case ops.StateRolledBack:
			rolledBack[op.QueryID] = op.ID
		}
	}
	for _, n := range h.liveSorted() {
		q, committed, held := n.Reserved()
		if !held {
			continue
		}
		if !committed {
			h.violate("gateway-ops", fmt.Sprintf("node %s holds uncommitted lease %q past TTL at quiescence", n.Addr(), q))
			continue
		}
		if !doneCommits[q] {
			h.violate("gateway-ops", fmt.Sprintf("node %s holds committed lease %q with no done commit op — orphaned reservation", n.Addr(), q))
		}
		if id, rb := rolledBack[q]; rb && !doneCommits[q] {
			h.violate("gateway-ops", fmt.Sprintf("rolled-back commit op %s left committed lease %q on %s", id, q, n.Addr()))
		}
	}
}

package ops

import (
	"fmt"
	"testing"

	"rbay/internal/store"
)

// BenchmarkOpsSubmit measures the gateway's accept path — validate,
// dedup, create, WAL-persist — the work done on the HTTP goroutine
// before a 202. The store runs group commit with an immediate flush
// window, so concurrent submits coalesce their op-record fsyncs exactly
// as rbayd's -fsync=group does.
func BenchmarkOpsSubmit(b *testing.B) {
	fed := newFed(b)
	l, _, err := store.Open(store.NewMemDir(), store.Options{
		Policy:       store.SyncGroup,
		GroupWindow:  -1, // flush immediately; coalesce only natural pile-up
		CompactEvery: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	e := testEngine(fed, l, Config{QueueMax: 1 << 30})

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if _, err := e.Submit(Request{
				Kind:    KindAttrs,
				Tenant:  "bench",
				Updates: []Update{{Name: fmt.Sprintf("load%d", i%64), Value: float64(i)}},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

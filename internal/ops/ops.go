// Package ops is the gateway's durable pending-operations engine: every
// mutating call accepted by the HTTP front door (reserve, commit,
// release, bulk attrs) becomes an operation record persisted through the
// node's WAL before it is acknowledged, then a bounded worker pool
// drives it through the core with per-step deadlines and capped
// exponential retry until it reaches a terminal state — done, failed, or
// rolled-back. Client-supplied idempotency keys dedupe retried
// submissions (same key, same op record, never a second reservation),
// and Restore replays incomplete records after a crash so an accepted
// operation either completes or durably rolls back. See docs/GATEWAY.md.
package ops

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rbay/internal/core"
	"rbay/internal/metrics"
	"rbay/internal/query"
	"rbay/internal/store"
	"rbay/internal/transport"
)

// Kind is the operation type.
type Kind string

// Operation kinds.
const (
	KindReserve Kind = "reserve"
	KindCommit  Kind = "commit"
	KindRelease Kind = "release"
	KindAttrs   Kind = "attrs"
)

// State is an operation's lifecycle state.
type State string

// Operation states. pending → running → done | failed | rolled-back.
const (
	StatePending    State = "pending"
	StateRunning    State = "running"
	StateDone       State = "done"
	StateFailed     State = "failed"
	StateRolledBack State = "rolled-back"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateRolledBack
}

// Candidate mirrors core.Candidate in a JSON- and WAL-friendly shape.
type Candidate struct {
	NodeID string `json:"nodeId"`
	Site   string `json:"site"`
	Host   string `json:"host"`
}

// Update is one attribute write inside an attrs op.
type Update struct {
	Name  string `json:"name"`
	Value any    `json:"value"`
}

// Request is one operation submission.
type Request struct {
	Kind    Kind
	IdemKey string
	Tenant  string
	// Caller, Query, Payload and Mode parameterize a reserve op's query.
	Caller  string
	Query   string
	Payload string
	Mode    string
	// QueryID+Candidates or FromOp (a done reserve op's ID) identify the
	// reservation a commit/release op acts on.
	QueryID    string
	Candidates []Candidate
	FromOp     string
	// Updates is an attrs op's write list.
	Updates []Update
}

// Op is a caller-visible operation snapshot.
type Op struct {
	ID         string      `json:"opId"`
	Kind       Kind        `json:"kind"`
	State      State       `json:"state"`
	Tenant     string      `json:"tenant,omitempty"`
	IdemKey    string      `json:"idemKey,omitempty"`
	Query      string      `json:"query,omitempty"`
	QueryID    string      `json:"queryId,omitempty"`
	Candidates []Candidate `json:"candidates,omitempty"`
	Shortfall  int         `json:"shortfall,omitempty"`
	FromOp     string      `json:"fromOp,omitempty"`
	Updates    []Update    `json:"updates,omitempty"`
	Error      string      `json:"error,omitempty"`
	Attempts   int         `json:"attempts,omitempty"`
	// Dedup marks a submission answered from an existing op record via
	// its idempotency key.
	Dedup   bool      `json:"dedup,omitempty"`
	Created time.Time `json:"created"`
	Updated time.Time `json:"updated"`
}

// Store is the slice of the WAL the engine persists through. A nil
// store keeps ops in memory only (tests, diskless nodes).
type Store interface {
	RecordOp(op store.StoredOp)
	RecordOpDelete(id string)
}

// Submission rejections the gateway maps to HTTP statuses.
var (
	// ErrInvalid wraps malformed requests (400).
	ErrInvalid = errors.New("ops: invalid request")
	// ErrQueueFull rejects submissions above QueueMax (429).
	ErrQueueFull = errors.New("ops: queue full")
	// ErrDraining rejects submissions during graceful shutdown (503).
	ErrDraining = errors.New("ops: draining")
)

// Config tunes an Engine. Zero values take the defaults.
type Config struct {
	// Workers bounds concurrently driven operations.
	Workers int
	// QueueMax bounds non-terminal operations; submissions above it are
	// shed with ErrQueueFull.
	QueueMax int
	// StepTimeout is the per-step deadline: one reserve query attempt,
	// one commit/release ack fan-out.
	StepTimeout time.Duration
	// RetryMax caps attempts per phase (first try included).
	RetryMax int
	// RetryBase/RetryCap shape the truncated exponential backoff between
	// attempts.
	RetryBase time.Duration
	RetryCap  time.Duration
	// RetainTerminal bounds retained terminal op records; older ones are
	// pruned from memory and WAL.
	RetainTerminal int
	// Now supplies the clock (virtual under simulation). Default
	// node.Now.
	Now func() time.Time
}

func (c Config) withDefaults(n *core.Node) Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.QueueMax <= 0 {
		c.QueueMax = 256
	}
	if c.StepTimeout <= 0 {
		c.StepTimeout = 5 * time.Second
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 250 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 5 * time.Second
	}
	if c.RetainTerminal <= 0 {
		c.RetainTerminal = 512
	}
	if c.Now == nil {
		c.Now = n.Now
	}
	return c
}

// op is the engine's internal operation state. Fields are guarded by
// Engine.mu; the driving logic runs on the node's event context and
// takes the lock for every mutation, never holding it across core
// calls.
type op struct {
	id      string
	kind    Kind
	state   State
	idemKey string
	tenant  string

	caller  string
	query   string
	payload string
	mode    string

	queryID   string
	cands     []Candidate
	fromOp    string
	shortfall int

	updates []Update

	errMsg   string
	attempts int
	// rollbackReason, once set, switches the op into its rollback phase:
	// release every candidate, then finish rolled-back.
	rollbackReason string
	rolledBack     bool

	created, updated time.Time

	deadline transport.CancelFunc
}

// Engine drives durable operations through one node. Submit, Get, List
// and Stats are safe from any goroutine; the engine marshals all core
// interaction onto the node's event context.
type Engine struct {
	node *core.Node
	st   Store
	cfg  Config
	m    *metrics.Registry

	mu        sync.Mutex
	seq       uint64
	idPrefix  string
	ops       map[string]*op
	byIdem    map[string]string
	queue     []*op
	waiters   map[string][]*op
	terminalQ []string
	runningN  int
	active    int // non-terminal ops (queued + parked + running)
	draining  bool
}

// NewEngine creates an engine for the node. st may be nil (memory-only
// ops). Metrics land in the node's registry.
func NewEngine(n *core.Node, st Store, cfg Config) *Engine {
	return &Engine{
		node:     n,
		st:       st,
		cfg:      cfg.withDefaults(n),
		m:        n.Metrics(),
		idPrefix: "op-" + strings.ReplaceAll(n.Addr().String(), "/", "-"),
		ops:      make(map[string]*op),
		byIdem:   make(map[string]string),
		waiters:  make(map[string][]*op),
	}
}

func idemKeyOf(tenant, key string) string { return tenant + "\x00" + key }

// validate rejects malformed requests before any record is created.
func validate(req Request) error {
	switch req.Kind {
	case KindReserve:
		if req.Query == "" {
			return fmt.Errorf("%w: reserve needs a query", ErrInvalid)
		}
		if _, err := query.Parse(req.Query); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		if _, err := core.ParseViewMode(req.Mode); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalid, err)
		}
	case KindCommit, KindRelease:
		if req.FromOp == "" && (req.QueryID == "" || len(req.Candidates) == 0) {
			return fmt.Errorf("%w: %s needs fromOp or queryId+candidates", ErrInvalid, req.Kind)
		}
	case KindAttrs:
		if len(req.Updates) == 0 {
			return fmt.Errorf("%w: no updates", ErrInvalid)
		}
		for _, u := range req.Updates {
			if u.Name == "" {
				return fmt.Errorf("%w: update with empty attribute name", ErrInvalid)
			}
		}
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrInvalid, req.Kind)
	}
	return nil
}

// Submit validates, dedupes, persists and enqueues one operation,
// returning its snapshot. An idempotency-key hit returns the existing
// op with Dedup set instead of creating a second record. Safe from any
// goroutine.
func (e *Engine) Submit(req Request) (Op, error) {
	if err := validate(req); err != nil {
		return Op{}, err
	}
	now := e.cfg.Now()
	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return Op{}, ErrDraining
	}
	if req.IdemKey != "" {
		if id, ok := e.byIdem[idemKeyOf(req.Tenant, req.IdemKey)]; ok {
			if prev := e.ops[id]; prev != nil {
				snap := prev.snapshot()
				snap.Dedup = true
				e.mu.Unlock()
				e.m.Inc("rbay_ops_dedup_total")
				return snap, nil
			}
		}
	}
	if e.active >= e.cfg.QueueMax {
		e.mu.Unlock()
		e.m.Inc("rbay_ops_shed_total")
		return Op{}, ErrQueueFull
	}
	e.seq++
	o := &op{
		id:      e.idPrefix + "-" + strconv.FormatUint(e.seq, 10),
		kind:    req.Kind,
		state:   StatePending,
		idemKey: req.IdemKey,
		tenant:  req.Tenant,
		caller:  req.Caller,
		query:   req.Query,
		payload: req.Payload,
		mode:    req.Mode,
		queryID: req.QueryID,
		cands:   append([]Candidate(nil), req.Candidates...),
		fromOp:  req.FromOp,
		updates: append([]Update(nil), req.Updates...),
		created: now,
		updated: now,
	}
	e.ops[o.id] = o
	if o.idemKey != "" {
		e.byIdem[idemKeyOf(o.tenant, o.idemKey)] = o.id
	}
	e.queue = append(e.queue, o)
	e.active++
	rec := o.stored()
	snap := o.snapshot()
	depth := e.active
	e.mu.Unlock()

	if e.st != nil {
		e.st.RecordOp(rec)
	}
	e.m.Inc("rbay_ops_submitted_total")
	e.m.ObserveInt("rbay_ops_queue_depth", depth)
	e.node.Do(e.pump)
	return snap, nil
}

// Get returns one op's snapshot.
func (e *Engine) Get(id string) (Op, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	o, ok := e.ops[id]
	if !ok {
		return Op{}, false
	}
	return o.snapshot(), true
}

// List returns every known op, oldest first.
func (e *Engine) List() []Op {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Op, 0, len(e.ops))
	for _, o := range e.ops {
		out = append(out, o.snapshot())
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// QueueDepth returns the count of non-terminal ops.
func (e *Engine) QueueDepth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.active
}

// Restore loads recovered op records — typically store.State.Ops after
// a crash — and re-enqueues every non-terminal one, so an operation
// accepted before the crash still reaches a terminal state. Call after
// the node has rejoined its federation. Returns the number of ops
// re-queued.
func (e *Engine) Restore(recs map[string]store.StoredOp) int {
	list := store.State{Ops: recs}.SortedOps()
	requeued := 0
	e.mu.Lock()
	for _, rec := range list {
		if _, dup := e.ops[rec.ID]; dup {
			continue
		}
		o := fromStored(rec)
		// Keep fresh IDs above every restored one so the prefix+seq
		// scheme never re-mints a recovered ID.
		if i := strings.LastIndexByte(rec.ID, '-'); i >= 0 {
			if n, err := strconv.ParseUint(rec.ID[i+1:], 10, 64); err == nil && n > e.seq {
				e.seq = n
			}
		}
		e.ops[o.id] = o
		if o.idemKey != "" {
			e.byIdem[idemKeyOf(o.tenant, o.idemKey)] = o.id
		}
		if o.state.Terminal() {
			e.terminalQ = append(e.terminalQ, o.id)
			continue
		}
		// A crash mid-flight leaves pending or running records; both
		// restart from scratch. Re-running is safe: reserve re-queries
		// (stale holds expire by TTL), commit/release are idempotent at
		// the owners, attrs re-applies value-equal writes as no-ops.
		o.state = StatePending
		o.attempts = 0
		e.queue = append(e.queue, o)
		e.active++
		requeued++
	}
	e.mu.Unlock()
	e.m.Add("rbay_ops_restored_total", uint64(requeued))
	if requeued > 0 {
		e.node.Do(e.pump)
	}
	return requeued
}

// Drain stops accepting new submissions and waits (wall clock) until
// every accepted op reaches a terminal state or the timeout expires,
// returning the ops still in flight. For the real-time daemon's SIGTERM
// path; not usable under simulated time.
func (e *Engine) Drain(timeout time.Duration) int {
	e.mu.Lock()
	e.draining = true
	e.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for {
		e.mu.Lock()
		left := e.active
		e.mu.Unlock()
		if left == 0 || time.Now().After(deadline) {
			return left
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// pump starts queued ops while worker slots are free. Node event
// context only.
func (e *Engine) pump() {
	for {
		e.mu.Lock()
		if e.runningN >= e.cfg.Workers || len(e.queue) == 0 {
			e.mu.Unlock()
			return
		}
		o := e.queue[0]
		e.queue = e.queue[1:]
		if o.state != StatePending {
			e.mu.Unlock()
			continue
		}
		o.state = StateRunning
		o.updated = e.cfg.Now()
		e.runningN++
		e.mu.Unlock()
		e.startOp(o)
	}
}

// startOp dispatches one attempt of o. Node event context only.
func (e *Engine) startOp(o *op) {
	if o.rollbackReason != "" {
		e.runRollback(o)
		return
	}
	switch o.kind {
	case KindReserve:
		e.runReserve(o)
	case KindCommit, KindRelease:
		e.runCommitRelease(o)
	case KindAttrs:
		e.runAttrs(o)
	default:
		e.finish(o, StateFailed, "unknown kind "+string(o.kind))
	}
}

// permanentQueryErr classifies reserve failures that retrying cannot
// fix.
func permanentQueryErr(err error) bool {
	return errors.Is(err, core.ErrNoPlan) || errors.Is(err, core.ErrNoView)
}

func (e *Engine) runReserve(o *op) {
	q, err := query.Parse(o.query)
	if err != nil {
		e.finish(o, StateFailed, err.Error())
		return
	}
	mode, err := core.ParseViewMode(o.mode)
	if err != nil {
		e.finish(o, StateFailed, err.Error())
		return
	}
	e.mu.Lock()
	o.attempts++
	gen := o.attempts
	caller := o.caller
	if caller == "" {
		caller = "ops/" + o.id
	}
	var payload any
	if o.payload != "" {
		payload = o.payload
	}
	o.deadline = e.node.Pastry().After(e.cfg.StepTimeout, func() {
		e.mu.Lock()
		stale := o.attempts != gen || o.state != StateRunning
		e.mu.Unlock()
		if stale {
			return
		}
		e.retryOrFinish(o, "reserve deadline exceeded")
	})
	e.mu.Unlock()

	e.node.QueryVia(q, caller, payload, mode, func(qr core.QueryResult) {
		e.mu.Lock()
		stale := o.attempts != gen || o.state != StateRunning
		if !stale && o.deadline != nil {
			o.deadline()
			o.deadline = nil
		}
		e.mu.Unlock()
		if stale {
			// The deadline (or a crash) already moved the op on; free
			// whatever this late attempt reserved.
			if qr.QueryID != "" && len(qr.Candidates) > 0 {
				e.node.Release(qr.QueryID, qr.Candidates)
			}
			return
		}
		if qr.Err != nil {
			// A failed round may still hold partial reservations; release
			// them before retrying or failing so nothing stays locked
			// beyond TTL on our account.
			if qr.QueryID != "" && len(qr.Candidates) > 0 {
				e.node.Release(qr.QueryID, qr.Candidates)
				e.mu.Lock()
				o.rolledBack = true
				e.mu.Unlock()
			}
			if permanentQueryErr(qr.Err) {
				e.finish(o, StateFailed, qr.Err.Error())
				return
			}
			e.retryOrFinish(o, qr.Err.Error())
			return
		}
		e.mu.Lock()
		o.queryID = qr.QueryID
		o.cands = fromCoreCandidates(qr.Candidates)
		o.shortfall = qr.Shortfall
		e.mu.Unlock()
		e.finish(o, StateDone, "")
	})
}

func (e *Engine) runCommitRelease(o *op) {
	e.mu.Lock()
	if o.fromOp != "" && o.queryID == "" {
		src, ok := e.ops[o.fromOp]
		switch {
		case !ok:
			e.mu.Unlock()
			e.finish(o, StateFailed, "unknown source op "+o.fromOp)
			return
		case src.state == StateDone:
			o.queryID = src.queryID
			o.cands = append([]Candidate(nil), src.cands...)
		case src.state.Terminal():
			state := string(src.state)
			e.mu.Unlock()
			e.finish(o, StateFailed, "source op "+o.fromOp+" ended "+state)
			return
		default:
			// Source still in flight: park until it finishes, freeing the
			// worker slot.
			o.state = StatePending
			e.runningN--
			e.waiters[o.fromOp] = append(e.waiters[o.fromOp], o)
			e.mu.Unlock()
			return
		}
	}
	if o.queryID == "" || len(o.cands) == 0 {
		e.mu.Unlock()
		e.finish(o, StateFailed, "nothing to "+string(o.kind))
		return
	}
	o.attempts++
	gen := o.attempts
	queryID := o.queryID
	cands := toCoreCandidates(o.cands)
	commit := o.kind == KindCommit
	e.mu.Unlock()

	cb := func(r core.AckResult) {
		e.mu.Lock()
		stale := o.attempts != gen || o.state != StateRunning || o.rollbackReason != ""
		attempts := o.attempts
		e.mu.Unlock()
		if stale {
			return
		}
		switch {
		case r.AllMatched():
			e.finish(o, StateDone, "")
		case commit && r.Unmatched > 0:
			// An owner refused: its reservation expired or was superseded.
			// All-or-nothing semantics — undo the owners that did commit.
			e.startRollback(o, fmt.Sprintf("commit refused by %d owner(s): reservation expired or superseded", r.Unmatched))
		case !commit && r.Lost == 0:
			// Unmatched releases mean already-free: success.
			e.finish(o, StateDone, "")
		case attempts >= e.cfg.RetryMax && commit:
			e.startRollback(o, fmt.Sprintf("commit incomplete after %d attempts: %d owner(s) unreachable", attempts, r.Lost))
		case attempts >= e.cfg.RetryMax:
			e.finish(o, StateFailed, fmt.Sprintf("release incomplete after %d attempts: %d owner(s) unreachable", attempts, r.Lost))
		default:
			e.retryAfterBackoff(o, attempts)
		}
	}
	if commit {
		e.node.CommitAcked(queryID, cands, e.cfg.StepTimeout, cb)
	} else {
		e.node.ReleaseAcked(queryID, cands, e.cfg.StepTimeout, cb)
	}
}

// startRollback flips the op into its rollback phase and runs the first
// release fan-out. Node event context only.
func (e *Engine) startRollback(o *op, reason string) {
	e.mu.Lock()
	o.rollbackReason = reason
	o.rolledBack = true
	o.attempts = 0
	e.mu.Unlock()
	e.runRollback(o)
}

func (e *Engine) runRollback(o *op) {
	e.mu.Lock()
	o.attempts++
	gen := o.attempts
	queryID := o.queryID
	cands := toCoreCandidates(o.cands)
	reason := o.rollbackReason
	e.mu.Unlock()
	e.node.ReleaseAcked(queryID, cands, e.cfg.StepTimeout, func(r core.AckResult) {
		e.mu.Lock()
		stale := o.attempts != gen || o.state != StateRunning
		attempts := o.attempts
		e.mu.Unlock()
		if stale {
			return
		}
		if r.Lost == 0 {
			e.finish(o, StateRolledBack, reason)
			return
		}
		if attempts >= e.cfg.RetryMax {
			e.finish(o, StateRolledBack, fmt.Sprintf("%s; rollback incomplete: %d owner(s) unreachable (TTL frees uncommitted holds)", reason, r.Lost))
			return
		}
		e.retryAfterBackoff(o, attempts)
	})
}

func (e *Engine) runAttrs(o *op) {
	e.mu.Lock()
	updates := o.updates
	id := o.id
	e.mu.Unlock()
	remaining := len(updates)
	applied := 0
	var failures []string
	// Acks fire on the node's event context (or synchronously here,
	// also on it), so plain counters are safe.
	for _, u := range updates {
		name := u.Name
		_ = e.node.IngestEnqueue(name, u.Value, "ops/"+id, func(err error) {
			remaining--
			if err != nil {
				failures = append(failures, name+": "+err.Error())
			} else {
				applied++
			}
			if remaining > 0 {
				return
			}
			e.mu.Lock()
			running := o.state == StateRunning
			e.mu.Unlock()
			if !running {
				return
			}
			switch {
			case len(failures) == 0:
				e.finish(o, StateDone, "")
			case applied == 0:
				e.finish(o, StateFailed, strings.Join(failures, "; "))
			default:
				e.finish(o, StateDone, fmt.Sprintf("%d/%d updates rejected: %s", len(failures), len(updates), strings.Join(failures, "; ")))
			}
		})
	}
}

// retryOrFinish retries o after backoff, or finishes it when attempts
// are exhausted (rolled-back when a rollback release was issued along
// the way, failed otherwise). Node event context only.
func (e *Engine) retryOrFinish(o *op, reason string) {
	e.mu.Lock()
	attempts := o.attempts
	rolledBack := o.rolledBack
	o.errMsg = reason
	e.mu.Unlock()
	if attempts >= e.cfg.RetryMax {
		state := StateFailed
		if rolledBack {
			state = StateRolledBack
		}
		e.finish(o, state, reason)
		return
	}
	e.retryAfterBackoff(o, attempts)
}

// retryAfterBackoff schedules o's next attempt under truncated
// exponential backoff. Node event context only.
func (e *Engine) retryAfterBackoff(o *op, attempts int) {
	e.m.Inc("rbay_ops_retries_total")
	backoff := e.cfg.RetryBase << uint(attempts-1)
	if backoff > e.cfg.RetryCap || backoff <= 0 {
		backoff = e.cfg.RetryCap
	}
	e.node.Pastry().After(backoff, func() {
		e.mu.Lock()
		run := o.state == StateRunning
		e.mu.Unlock()
		if run {
			e.startOp(o)
		}
	})
}

// finish moves o to a terminal state, persists the transition, prunes
// old terminal records, flushes dependents and refills worker slots.
// Node event context only.
func (e *Engine) finish(o *op, state State, errMsg string) {
	e.mu.Lock()
	if o.state.Terminal() {
		e.mu.Unlock()
		return
	}
	if o.state == StateRunning {
		e.runningN--
	}
	if o.deadline != nil {
		o.deadline()
		o.deadline = nil
	}
	o.state = state
	o.errMsg = errMsg
	o.updated = e.cfg.Now()
	e.active--
	e.terminalQ = append(e.terminalQ, o.id)
	var evict []string
	for len(e.terminalQ) > e.cfg.RetainTerminal {
		eid := e.terminalQ[0]
		e.terminalQ = e.terminalQ[1:]
		if old := e.ops[eid]; old != nil {
			delete(e.ops, eid)
			if old.idemKey != "" {
				key := idemKeyOf(old.tenant, old.idemKey)
				if e.byIdem[key] == eid {
					delete(e.byIdem, key)
				}
			}
			evict = append(evict, eid)
		}
	}
	waiters := e.waiters[o.id]
	delete(e.waiters, o.id)
	e.queue = append(e.queue, waiters...)
	rec := o.stored()
	latency := o.updated.Sub(o.created)
	depth := e.active
	e.mu.Unlock()

	if e.st != nil {
		e.st.RecordOp(rec)
		for _, id := range evict {
			e.st.RecordOpDelete(id)
		}
	}
	switch state {
	case StateDone:
		e.m.Inc("rbay_ops_done_total")
	case StateFailed:
		e.m.Inc("rbay_ops_failed_total")
	case StateRolledBack:
		e.m.Inc("rbay_ops_rolledback_total")
	}
	e.m.Observe("rbay_op_latency", latency)
	e.m.ObserveInt("rbay_ops_queue_depth", depth)
	e.node.Do(e.pump)
}

// snapshot renders o for callers. Engine.mu must be held.
func (o *op) snapshot() Op {
	return Op{
		ID:         o.id,
		Kind:       o.kind,
		State:      o.state,
		Tenant:     o.tenant,
		IdemKey:    o.idemKey,
		Query:      o.query,
		QueryID:    o.queryID,
		Candidates: append([]Candidate(nil), o.cands...),
		Shortfall:  o.shortfall,
		FromOp:     o.fromOp,
		Updates:    append([]Update(nil), o.updates...),
		Error:      o.errMsg,
		Attempts:   o.attempts,
		Created:    o.created,
		Updated:    o.updated,
	}
}

// stored renders o as its WAL record. Engine.mu must be held.
func (o *op) stored() store.StoredOp {
	rec := store.StoredOp{
		ID:           o.id,
		Kind:         string(o.kind),
		State:        string(o.state),
		IdemKey:      o.idemKey,
		Tenant:       o.tenant,
		Query:        o.query,
		Payload:      o.payload,
		Caller:       o.caller,
		Mode:         o.mode,
		FromOp:       o.fromOp,
		QueryID:      o.queryID,
		Error:        o.errMsg,
		Shortfall:    o.shortfall,
		CreatedNanos: o.created.UnixNano(),
		UpdatedNanos: o.updated.UnixNano(),
	}
	// Running is a volatile state: a record read back after a crash
	// means "accepted but unfinished", which is exactly pending.
	if rec.State == string(StateRunning) {
		rec.State = string(StatePending)
	}
	for _, c := range o.cands {
		rec.Candidates = append(rec.Candidates, store.OpCandidate{NodeID: c.NodeID, Site: c.Site, Host: c.Host})
	}
	if len(o.updates) > 0 {
		if raw, err := json.Marshal(o.updates); err == nil {
			rec.Updates = string(raw)
		}
	}
	return rec
}

// fromStored rebuilds an op from its WAL record.
func fromStored(rec store.StoredOp) *op {
	o := &op{
		id:        rec.ID,
		kind:      Kind(rec.Kind),
		state:     State(rec.State),
		idemKey:   rec.IdemKey,
		tenant:    rec.Tenant,
		query:     rec.Query,
		payload:   rec.Payload,
		caller:    rec.Caller,
		mode:      rec.Mode,
		fromOp:    rec.FromOp,
		queryID:   rec.QueryID,
		errMsg:    rec.Error,
		shortfall: rec.Shortfall,
		created:   time.Unix(0, rec.CreatedNanos),
		updated:   time.Unix(0, rec.UpdatedNanos),
	}
	for _, c := range rec.Candidates {
		o.cands = append(o.cands, Candidate{NodeID: c.NodeID, Site: c.Site, Host: c.Host})
	}
	if rec.Updates != "" {
		var ups []Update
		if err := json.Unmarshal([]byte(rec.Updates), &ups); err == nil {
			for i := range ups {
				ups[i].Value = NormalizeJSONValue(ups[i].Value)
			}
			o.updates = ups
		}
	}
	return o
}

// NormalizeJSONValue maps decoded JSON shapes onto the attribute value
// types the store codec round-trips: homogeneous string arrays become
// []string; everything else passes through (non-scalar leftovers are
// rejected by ingest validation).
func NormalizeJSONValue(v any) any {
	arr, ok := v.([]any)
	if !ok {
		return v
	}
	out := make([]string, len(arr))
	for i, e := range arr {
		s, ok := e.(string)
		if !ok {
			return v
		}
		out[i] = s
	}
	return out
}

func toCoreCandidates(cands []Candidate) []core.Candidate {
	out := make([]core.Candidate, 0, len(cands))
	for _, c := range cands {
		out = append(out, core.Candidate{
			NodeID: c.NodeID,
			Site:   c.Site,
			Addr:   transport.Addr{Site: c.Site, Host: c.Host},
		})
	}
	return out
}

func fromCoreCandidates(cands []core.Candidate) []Candidate {
	out := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		out = append(out, Candidate{NodeID: c.NodeID, Site: c.Site, Host: c.Addr.Host})
	}
	return out
}

package ops

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"rbay/internal/core"
	"rbay/internal/naming"
	"rbay/internal/scribe"
	"rbay/internal/store"
)

func testRegistry(t testing.TB) *naming.Registry {
	t.Helper()
	r := naming.NewRegistry()
	r.MustDefine(naming.TreeDef{Name: "GPU", Pred: naming.Pred{Attr: "GPU", Op: naming.OpEq, Value: true}, Creator: "rbay"})
	return r
}

func fastConfig() core.Config {
	return core.Config{
		Scribe:             scribe.Config{AggregateInterval: 300 * time.Millisecond},
		MembershipInterval: 500 * time.Millisecond,
		ReserveTTL:         3 * time.Second,
		BackoffSlot:        20 * time.Millisecond,
	}
}

// newFed builds one 12-node site where nodes 0,4,8 have GPUs.
func newFed(t testing.TB) *core.Federation {
	t.Helper()
	fed, err := core.NewFederation(testRegistry(t), core.FedConfig{
		Sites:        []string{"lab"},
		NodesPerSite: 12,
		Node:         fastConfig(),
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range fed.BySite["lab"] {
		n.SetAttribute("GPU", i%4 == 0)
	}
	fed.Settle()
	return fed
}

func testEngine(fed *core.Federation, st Store, cfg Config) *Engine {
	n := fed.BySite["lab"][0]
	if cfg.Now == nil {
		cfg.Now = n.Now
	}
	if cfg.StepTimeout == 0 {
		cfg.StepTimeout = 3 * time.Second
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.RetryCap == 0 {
		cfg.RetryCap = time.Second
	}
	return NewEngine(n, st, cfg)
}

// driveUntil steps the simulation until pred holds or ~60 virtual
// seconds pass.
func driveUntil(t *testing.T, fed *core.Federation, what string, pred func() bool) {
	t.Helper()
	for i := 0; i < 600; i++ {
		if pred() {
			return
		}
		fed.RunFor(100 * time.Millisecond)
	}
	t.Fatalf("condition %q never held", what)
}

func terminal(e *Engine, id string) func() bool {
	return func() bool {
		op, ok := e.Get(id)
		return ok && op.State.Terminal()
	}
}

func committedCount(fed *core.Federation) int {
	n := 0
	for _, node := range fed.BySite["lab"] {
		if _, c, ok := node.Reserved(); ok && c {
			n++
		}
	}
	return n
}

func TestReserveCommitReleaseLifecycle(t *testing.T) {
	fed := newFed(t)
	e := testEngine(fed, nil, Config{})

	res, err := e.Submit(Request{Kind: KindReserve, Query: "SELECT 2 FROM lab WHERE GPU = true;", Tenant: "acme"})
	if err != nil {
		t.Fatalf("submit reserve: %v", err)
	}
	if res.State != StatePending {
		t.Fatalf("fresh op state = %s", res.State)
	}
	driveUntil(t, fed, "reserve terminal", terminal(e, res.ID))
	got, _ := e.Get(res.ID)
	if got.State != StateDone || len(got.Candidates) != 2 || got.QueryID == "" {
		t.Fatalf("reserve op = %+v", got)
	}

	com, err := e.Submit(Request{Kind: KindCommit, FromOp: res.ID})
	if err != nil {
		t.Fatalf("submit commit: %v", err)
	}
	driveUntil(t, fed, "commit terminal", terminal(e, com.ID))
	if op, _ := e.Get(com.ID); op.State != StateDone {
		t.Fatalf("commit op = %+v", op)
	}
	// Leases hold past TTL.
	fed.RunFor(10 * time.Second)
	if n := committedCount(fed); n != 2 {
		t.Fatalf("committed = %d, want 2", n)
	}

	rel, err := e.Submit(Request{Kind: KindRelease, FromOp: res.ID})
	if err != nil {
		t.Fatalf("submit release: %v", err)
	}
	driveUntil(t, fed, "release terminal", terminal(e, rel.ID))
	if op, _ := e.Get(rel.ID); op.State != StateDone {
		t.Fatalf("release op = %+v", op)
	}
	if n := committedCount(fed); n != 0 {
		t.Fatalf("committed after release = %d", n)
	}
}

func TestCommitBeforeReserveFinishesParksThenRuns(t *testing.T) {
	fed := newFed(t)
	e := testEngine(fed, nil, Config{})
	res, err := e.Submit(Request{Kind: KindReserve, Query: "SELECT 1 FROM lab WHERE GPU = true;"})
	if err != nil {
		t.Fatal(err)
	}
	// Submit the commit immediately, while the reserve has not run yet:
	// it must park on the reserve and complete after it.
	com, err := e.Submit(Request{Kind: KindCommit, FromOp: res.ID})
	if err != nil {
		t.Fatal(err)
	}
	driveUntil(t, fed, "both terminal", func() bool {
		a, _ := e.Get(res.ID)
		b, _ := e.Get(com.ID)
		return a.State.Terminal() && b.State.Terminal()
	})
	a, _ := e.Get(res.ID)
	b, _ := e.Get(com.ID)
	if a.State != StateDone || b.State != StateDone {
		t.Fatalf("reserve=%+v commit=%+v", a, b)
	}
	if committedCount(fed) != 1 {
		t.Fatalf("committed = %d, want 1", committedCount(fed))
	}
}

func TestCommitAfterTTLExpiryRollsBack(t *testing.T) {
	fed := newFed(t)
	e := testEngine(fed, nil, Config{})
	res, _ := e.Submit(Request{Kind: KindReserve, Query: "SELECT 2 FROM lab WHERE GPU = true;"})
	driveUntil(t, fed, "reserve terminal", terminal(e, res.ID))
	// Sit past the reservation TTL before committing.
	fed.RunFor(10 * time.Second)
	com, _ := e.Submit(Request{Kind: KindCommit, FromOp: res.ID})
	driveUntil(t, fed, "commit terminal", terminal(e, com.ID))
	op, _ := e.Get(com.ID)
	if op.State != StateRolledBack {
		t.Fatalf("commit op = %+v, want rolled-back", op)
	}
	if !strings.Contains(op.Error, "expired") {
		t.Fatalf("rollback reason %q misses expiry", op.Error)
	}
	fed.RunFor(5 * time.Second)
	if n := committedCount(fed); n != 0 {
		t.Fatalf("committed = %d after rolled-back commit", n)
	}
}

func TestIdempotencyKeyDedupesConcurrentSubmits(t *testing.T) {
	fed := newFed(t)
	e := testEngine(fed, nil, Config{})
	const submitters = 8
	ids := make([]string, submitters)
	dedups := make([]bool, submitters)
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			op, err := e.Submit(Request{
				Kind:    KindReserve,
				Query:   "SELECT 1 FROM lab WHERE GPU = true;",
				Tenant:  "acme",
				IdemKey: "lease-42",
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = op.ID
			dedups[i] = op.Dedup
		}(i)
	}
	wg.Wait()
	created := 0
	for i := 0; i < submitters; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("submit %d got op %s, want %s", i, ids[i], ids[0])
		}
		if !dedups[i] {
			created++
		}
	}
	if created != 1 {
		t.Fatalf("%d submissions created records, want 1", created)
	}
	driveUntil(t, fed, "op terminal", terminal(e, ids[0]))
	// Exactly one reservation in the federation.
	reserved := 0
	for _, node := range fed.BySite["lab"] {
		if _, _, ok := node.Reserved(); ok {
			reserved++
		}
	}
	if reserved != 1 {
		t.Fatalf("reserved = %d, want exactly 1", reserved)
	}
	// A different tenant with the same key gets its own op.
	other, err := e.Submit(Request{Kind: KindReserve, Query: "SELECT 1 FROM lab WHERE GPU = true;", Tenant: "umbrella", IdemKey: "lease-42"})
	if err != nil {
		t.Fatal(err)
	}
	if other.ID == ids[0] || other.Dedup {
		t.Fatalf("cross-tenant submission deduped: %+v", other)
	}
}

func TestQueueFullSheds(t *testing.T) {
	fed := newFed(t)
	e := testEngine(fed, nil, Config{QueueMax: 2})
	for i := 0; i < 2; i++ {
		if _, err := e.Submit(Request{Kind: KindReserve, Query: "SELECT 1 FROM lab WHERE GPU = true;"}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err := e.Submit(Request{Kind: KindReserve, Query: "SELECT 1 FROM lab WHERE GPU = true;"})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	fed := newFed(t)
	e := testEngine(fed, nil, Config{})
	cases := []Request{
		{Kind: KindReserve},
		{Kind: KindReserve, Query: "not sql"},
		{Kind: KindCommit},
		{Kind: KindAttrs},
		{Kind: KindAttrs, Updates: []Update{{Name: ""}}},
		{Kind: "mystery"},
	}
	for _, req := range cases {
		if _, err := e.Submit(req); !errors.Is(err, ErrInvalid) {
			t.Errorf("Submit(%+v) err = %v, want ErrInvalid", req, err)
		}
	}
}

func TestCommitUnknownSourceFails(t *testing.T) {
	fed := newFed(t)
	e := testEngine(fed, nil, Config{})
	com, err := e.Submit(Request{Kind: KindCommit, FromOp: "op-lab-n9-99"})
	if err != nil {
		t.Fatal(err)
	}
	driveUntil(t, fed, "commit terminal", terminal(e, com.ID))
	op, _ := e.Get(com.ID)
	if op.State != StateFailed || !strings.Contains(op.Error, "unknown source op") {
		t.Fatalf("op = %+v", op)
	}
}

func TestAttrsOpAppliesThroughIngest(t *testing.T) {
	fed := newFed(t)
	e := testEngine(fed, nil, Config{})
	op, err := e.Submit(Request{Kind: KindAttrs, Updates: []Update{
		{Name: "mem_gb", Value: 64},
		{Name: "rack", Value: "r12"},
		{Name: "bogus", Value: map[string]any{"no": "pe"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	driveUntil(t, fed, "attrs terminal", terminal(e, op.ID))
	got, _ := e.Get(op.ID)
	if got.State != StateDone {
		t.Fatalf("attrs op = %+v", got)
	}
	if !strings.Contains(got.Error, "1/3 updates rejected") {
		t.Fatalf("partial failure not reported: %+v", got)
	}
	n := fed.BySite["lab"][0]
	if v, _ := n.Attributes().Get("rack"); v != "r12" {
		t.Fatalf("rack = %v", v)
	}
}

func TestRestoreReplaysIncompleteOps(t *testing.T) {
	disk := store.NewMemDir()
	log, _, err := store.Open(disk, store.Options{Policy: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	fed1 := newFed(t)
	e1 := testEngine(fed1, log, Config{})
	res, err := e1.Submit(Request{Kind: KindReserve, Query: "SELECT 2 FROM lab WHERE GPU = true;", IdemKey: "boot-1", Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	att, err := e1.Submit(Request{Kind: KindAttrs, Updates: []Update{{Name: "rack", Value: "r7"}}})
	if err != nil {
		t.Fatal(err)
	}
	// Crash before anything ran: the WAL holds two pending records.
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	log2, st, err := store.Open(disk, store.Options{Policy: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Ops) != 2 {
		t.Fatalf("recovered ops = %d, want 2", len(st.Ops))
	}
	fed2 := newFed(t)
	e2 := testEngine(fed2, log2, Config{})
	if n := e2.Restore(st.Ops); n != 2 {
		t.Fatalf("Restore requeued %d, want 2", n)
	}
	driveUntil(t, fed2, "both terminal", func() bool {
		a, _ := e2.Get(res.ID)
		b, _ := e2.Get(att.ID)
		return a.State.Terminal() && b.State.Terminal()
	})
	a, _ := e2.Get(res.ID)
	if a.State != StateDone || len(a.Candidates) != 2 {
		t.Fatalf("restored reserve = %+v", a)
	}
	b, _ := e2.Get(att.ID)
	if b.State != StateDone {
		t.Fatalf("restored attrs = %+v", b)
	}
	// The idempotency key survives the restart: re-submitting after
	// recovery returns the same op instead of reserving again.
	again, err := e2.Submit(Request{Kind: KindReserve, Query: "SELECT 2 FROM lab WHERE GPU = true;", IdemKey: "boot-1", Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != res.ID || !again.Dedup {
		t.Fatalf("post-restart resubmit = %+v, want dedup of %s", again, res.ID)
	}
	// Fresh IDs must not collide with restored ones.
	fresh, err := e2.Submit(Request{Kind: KindAttrs, Updates: []Update{{Name: "x", Value: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, clash := st.Ops[fresh.ID]; clash {
		t.Fatalf("fresh op reused recovered ID %s", fresh.ID)
	}
	// Terminal transitions landed durably.
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}
	_, st3, err := store.Open(disk, store.Options{Policy: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if rec, ok := st3.Ops[res.ID]; !ok || rec.State != string(StateDone) || len(rec.Candidates) != 2 {
		t.Fatalf("durable reserve record = %+v", st3.Ops[res.ID])
	}
}

func TestTerminalRetentionPrunes(t *testing.T) {
	disk := store.NewMemDir()
	log, _, err := store.Open(disk, store.Options{Policy: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	fed := newFed(t)
	e := testEngine(fed, log, Config{RetainTerminal: 2})
	var last string
	for i := 0; i < 5; i++ {
		op, err := e.Submit(Request{Kind: KindAttrs, Updates: []Update{{Name: "k", Value: i}}})
		if err != nil {
			t.Fatal(err)
		}
		last = op.ID
		driveUntil(t, fed, "attrs terminal", terminal(e, last))
	}
	if got := len(e.List()); got != 2 {
		t.Fatalf("retained ops = %d, want 2", got)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	_, st, err := store.Open(disk, store.Options{Policy: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Ops) != 2 {
		t.Fatalf("durable retained ops = %d, want 2", len(st.Ops))
	}
}

package transport

import (
	"testing"
	"time"
)

func TestAddrString(t *testing.T) {
	a := Addr{Site: "virginia", Host: "n042"}
	if a.String() != "virginia/n042" {
		t.Errorf("String = %q", a.String())
	}
	if a.IsZero() {
		t.Error("populated addr reported zero")
	}
	if !(Addr{}).IsZero() {
		t.Error("zero addr not reported zero")
	}
	if (Addr{Site: "x"}).IsZero() {
		t.Error("half-populated addr reported zero")
	}
}

func TestConstantLatency(t *testing.T) {
	m := ConstantLatency(7 * time.Millisecond)
	d := m.Delay(Addr{Site: "a", Host: "1"}, Addr{Site: "b", Host: "2"})
	if d != 7*time.Millisecond {
		t.Errorf("delay = %v", d)
	}
}

func TestLatencyFunc(t *testing.T) {
	m := LatencyFunc(func(from, to Addr) time.Duration {
		if from.Site == to.Site {
			return time.Millisecond
		}
		return 100 * time.Millisecond
	})
	if m.Delay(Addr{Site: "a"}, Addr{Site: "a"}) != time.Millisecond {
		t.Error("intra-site delay")
	}
	if m.Delay(Addr{Site: "a"}, Addr{Site: "b"}) != 100*time.Millisecond {
		t.Error("inter-site delay")
	}
}

func TestAddrsAreMapKeys(t *testing.T) {
	m := map[Addr]int{}
	m[Addr{Site: "a", Host: "1"}] = 1
	m[Addr{Site: "a", Host: "1"}] = 2
	if len(m) != 1 || m[Addr{Site: "a", Host: "1"}] != 2 {
		t.Errorf("addr map semantics broken: %v", m)
	}
}

// Package transport defines the message-passing abstraction every RBAY
// component is written against. Two implementations exist: internal/simnet,
// a deterministic discrete-event network with a virtual clock used for
// tests, benchmarks, and the paper's experiments; and internal/tcpnet, a
// TCP transport (binary wire codec, internal/wire) used to deploy a real
// multi-process federation.
//
// All protocol code (Pastry, Scribe, the RBAY core) is event-driven and
// non-blocking: a node reacts to delivered messages and timer callbacks and
// may send further messages, but never blocks waiting for a reply. This is
// what lets the same code run unchanged under virtual time.
package transport

import (
	"errors"
	"time"
)

// Addr identifies an endpoint: a host name unique within a site, plus the
// site it belongs to. Sites are the unit of administrative isolation.
type Addr struct {
	Site string
	Host string
}

// String renders the address as "site/host".
func (a Addr) String() string { return a.Site + "/" + a.Host }

// IsZero reports whether the address is the zero value.
func (a Addr) IsZero() bool { return a.Site == "" && a.Host == "" }

// Handler is invoked for each message delivered to an endpoint. The
// implementation guarantees handlers of a single endpoint are never invoked
// concurrently (simnet is single-threaded; tcpnet serializes per endpoint).
type Handler func(from Addr, msg any)

// CancelFunc cancels a pending timer. Calling it after the timer fired is a
// no-op. It reports whether the timer was still pending.
type CancelFunc func() bool

// ErrUnreachable is returned by Send when the destination endpoint does not
// exist, has been closed, or has been partitioned away by failure injection.
var ErrUnreachable = errors.New("transport: destination unreachable")

// ErrClosed is returned when operating on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// Endpoint is one attachment point to the network.
type Endpoint interface {
	// Addr returns the endpoint's address.
	Addr() Addr

	// Send transmits msg to the destination. Delivery is asynchronous; an
	// error reports only locally-detectable failures (closed endpoint,
	// unknown destination in simnet).
	Send(to Addr, msg any) error

	// After schedules fn to run on this endpoint's event context after d.
	// fn enjoys the same no-concurrent-invocation guarantee as Handler.
	After(d time.Duration, fn func()) CancelFunc

	// Now returns the current time: virtual under simnet, wall-clock under
	// tcpnet. Protocol code must use this, never time.Now.
	Now() time.Time

	// Close detaches the endpoint; subsequent sends to it fail.
	Close() error
}

// Network creates endpoints.
type Network interface {
	// NewEndpoint attaches a new endpoint at addr whose messages are
	// delivered to h. It fails if addr is already attached.
	NewEndpoint(addr Addr, h Handler) (Endpoint, error)
}

// LatencyModel yields the one-way delay for a message between two
// addresses. Implementations should be deterministic given their own seeded
// randomness so simulations are reproducible.
type LatencyModel interface {
	Delay(from, to Addr) time.Duration
}

// LatencyFunc adapts a function to a LatencyModel.
type LatencyFunc func(from, to Addr) time.Duration

// Delay implements LatencyModel.
func (f LatencyFunc) Delay(from, to Addr) time.Duration { return f(from, to) }

// ConstantLatency returns a model with a fixed one-way delay everywhere.
func ConstantLatency(d time.Duration) LatencyModel {
	return LatencyFunc(func(_, _ Addr) time.Duration { return d })
}

// Package ingest is the bounded, durable churn-ingestion stage between
// update producers (monitor feeds, gateway bulk posts) and a node's
// attribute store. Producers on any goroutine enqueue validated update
// messages; the owning node's apply loop drains them in batches with
// per-key last-write-wins coalescing, applies each batch through one WAL
// frame and one deferred view pass, and acks. Malformed or
// quarantined-handler updates are nacked onto a bounded error queue
// instead of poisoning the pipeline, and when queue depth crosses the
// high-water mark the queue degrades to per-key sampling (keep latest,
// count sheds) rather than blocking the producer or the node event loop.
// See docs/INGEST.md.
package ingest

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rbay/internal/metrics"
)

// Defaults for Config zero values.
const (
	// DefaultHighWater is the queue depth above which enqueues degrade to
	// per-key sampling.
	DefaultHighWater = 4096
	// DefaultBatchSize is the maximum raw updates drained per apply batch.
	DefaultBatchSize = 256
	// DefaultErrorCap bounds the error queue ring.
	DefaultErrorCap = 128
	// maxNameLen rejects absurd attribute names before they reach the
	// store layer.
	maxNameLen = 256
)

// ErrEmptyName rejects updates without an attribute name.
var ErrEmptyName = errors.New("ingest: empty attribute name")

// Config tunes a Queue. Zero values take the defaults above; Metrics,
// Now and Wake may be nil.
type Config struct {
	// HighWater is the queue depth at which backpressure switches from
	// keep-all to per-key sampling.
	HighWater int
	// BatchSize caps raw updates per DrainBatch.
	BatchSize int
	// ErrorCap bounds the error queue.
	ErrorCap int
	// Metrics receives the rbay_ingest_* counters and histograms
	// (nil-safe).
	Metrics *metrics.Registry
	// Now supplies the (virtual) clock for staleness accounting. Default
	// time.Now.
	Now func() time.Time
	// Wake is called — outside the queue lock — when an enqueue makes the
	// queue non-empty, so the owner can schedule an apply pass. Spurious
	// wakes are fine: draining an empty queue is a no-op.
	Wake func()
	// Validate vets an update before it is queued; a non-nil error nacks
	// it straight to the error queue. Default ValidateUpdate.
	Validate func(name string, value any) error
}

// pending is one queued raw update (possibly subsuming earlier sampled
// writes to the same key).
type pending struct {
	name   string
	value  any
	source string
	at     time.Time
	raw    int // producer updates this entry subsumes (≥1)
	acks   []func(error)
}

// Apply is one coalesced update handed to the apply loop: the latest
// value for a key plus the acks of every raw update it subsumes.
type Apply struct {
	Name   string
	Value  any
	Source string
	// At is the enqueue time of the newest subsumed update — the apply
	// loop's staleness measurement point.
	At time.Time
	// Raw is how many producer updates this apply covers.
	Raw int

	acks []func(error)
	q    *Queue
}

// Ack reports the apply as durably applied: every subsumed producer ack
// fires with nil.
func (a *Apply) Ack() {
	a.q.noteApplied(a.Raw)
	for _, f := range a.acks {
		f(nil)
	}
}

// Failed is one update parked on the error queue.
type Failed struct {
	Name   string
	Value  any
	Source string
	At     time.Time
	Reason string
}

// Stats is a point-in-time snapshot of the queue's counters.
type Stats struct {
	Depth     int    // queued entries right now
	MaxDepth  int    // high-water mark observed since creation
	Enqueued  uint64 // raw updates accepted onto the queue
	Applied   uint64 // raw updates covered by acked applies
	Coalesced uint64 // queued entries collapsed at drain time
	Shed      uint64 // raw updates subsumed by sampling above high water
	Nacked    uint64 // updates parked on the error queue
	Batches   uint64 // apply batches drained
}

// Queue is the bounded ingestion queue for one node. Enqueue is safe
// from any goroutine; DrainBatch and Nack are called by the owning apply
// loop.
type Queue struct {
	cfg Config

	mu     sync.Mutex
	q      []*pending
	byKey  map[string]*pending
	errs   []Failed
	errOff int // ring start when len(errs) == ErrorCap

	depth    int // == len(q), kept for Stats without re-deriving
	maxDepth int
	stats    Stats
}

// NewQueue creates an ingestion queue.
func NewQueue(cfg Config) *Queue {
	if cfg.HighWater <= 0 {
		cfg.HighWater = DefaultHighWater
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.ErrorCap <= 0 {
		cfg.ErrorCap = DefaultErrorCap
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Validate == nil {
		cfg.Validate = ValidateUpdate
	}
	return &Queue{cfg: cfg, byKey: make(map[string]*pending)}
}

// ValidateUpdate is the default message validation: a non-empty, bounded
// attribute name and a value type the store's tagged codec can
// round-trip. Anything else belongs on the error queue, not in the WAL.
func ValidateUpdate(name string, value any) error {
	if name == "" {
		return ErrEmptyName
	}
	if len(name) > maxNameLen {
		return fmt.Errorf("ingest: attribute name %d bytes exceeds %d", len(name), maxNameLen)
	}
	switch value.(type) {
	case nil, bool, int, int32, int64, float32, float64, string, []string:
		return nil
	}
	return fmt.Errorf("ingest: unsupported value type %T for %q", value, name)
}

// Enqueue validates and queues one update. ack, if non-nil, fires
// exactly once: with nil when the update (or a newer write to the same
// key that subsumed it) is durably applied, or with the rejection error.
// Above the high-water mark, writes to already-queued keys sample in
// place (latest value wins, shed counted) so depth stays bounded and the
// producer never blocks. The returned error is non-nil only for
// validation rejections.
func (q *Queue) Enqueue(name string, value any, source string, ack func(error)) error {
	if err := q.cfg.Validate(name, value); err != nil {
		q.reject(Failed{Name: name, Value: value, Source: source, At: q.cfg.Now(), Reason: err.Error()})
		if ack != nil {
			ack(err)
		}
		return err
	}
	now := q.cfg.Now()
	q.mu.Lock()
	wasEmpty := len(q.q) == 0
	if len(q.q) >= q.cfg.HighWater {
		if p := q.byKey[name]; p != nil {
			// Sampling mode: keep the latest value, drop the superseded one,
			// chain the ack so the producer still learns the key landed.
			p.value, p.source, p.at = value, source, now
			p.raw++
			if ack != nil {
				p.acks = append(p.acks, ack)
			}
			q.stats.Shed++
			q.mu.Unlock()
			q.cfg.Metrics.Inc("rbay_ingest_shed_total")
			return nil
		}
		// A key not yet queued is always admitted — sampling bounds depth
		// by HighWater plus the distinct-key count, never losing a key's
		// only pending value.
	}
	p := &pending{name: name, value: value, source: source, at: now, raw: 1}
	if ack != nil {
		p.acks = append(p.acks, ack)
	}
	q.q = append(q.q, p)
	q.byKey[name] = p
	q.stats.Enqueued++
	if len(q.q) > q.maxDepth {
		q.maxDepth = len(q.q)
	}
	q.mu.Unlock()
	q.cfg.Metrics.Inc("rbay_ingest_enqueued_total")
	if wasEmpty && q.cfg.Wake != nil {
		q.cfg.Wake()
	}
	return nil
}

// DrainBatch removes up to BatchSize raw updates from the head of the
// queue and collapses them per key (last write wins, first-occurrence
// order preserved). raw is the raw update count drained; zero means the
// queue was empty.
func (q *Queue) DrainBatch() (applies []*Apply, raw int) {
	q.mu.Lock()
	n := len(q.q)
	if n == 0 {
		q.mu.Unlock()
		return nil, 0
	}
	if n > q.cfg.BatchSize {
		n = q.cfg.BatchSize
	}
	q.cfg.Metrics.ObserveInt("rbay_ingest_queue_depth", len(q.q))
	head := q.q[:n]
	// Copy the remainder into a fresh slice so drained pendings are not
	// pinned by the old backing array.
	q.q = append([]*pending(nil), q.q[n:]...)
	for _, p := range head {
		if q.byKey[p.name] == p {
			delete(q.byKey, p.name)
		}
	}
	byName := make(map[string]*Apply, len(head))
	for _, p := range head {
		raw += p.raw
		if a := byName[p.name]; a != nil {
			a.Value, a.Source, a.At = p.value, p.source, p.at
			a.Raw += p.raw
			a.acks = append(a.acks, p.acks...)
			q.stats.Coalesced++
			continue
		}
		a := &Apply{Name: p.name, Value: p.value, Source: p.source, At: p.at, Raw: p.raw, acks: p.acks, q: q}
		byName[p.name] = a
		applies = append(applies, a)
	}
	coalesced := len(head) - len(applies)
	q.stats.Batches++
	q.mu.Unlock()
	q.cfg.Metrics.Add("rbay_ingest_coalesced_total", uint64(coalesced))
	q.cfg.Metrics.ObserveInt("rbay_ingest_batch_raw", raw)
	return applies, raw
}

// Nack parks a drained apply on the error queue — the apply loop calls
// it for updates whose target attribute is quarantined or whose apply
// failed. Every subsumed producer ack fires with the reason.
func (q *Queue) Nack(a *Apply, reason string) {
	err := errors.New(reason)
	q.reject(Failed{Name: a.Name, Value: a.Value, Source: a.Source, At: a.At, Reason: reason})
	for _, f := range a.acks {
		f(err)
	}
}

// reject records one failed update on the bounded error ring.
func (q *Queue) reject(f Failed) {
	q.mu.Lock()
	if len(q.errs) < q.cfg.ErrorCap {
		q.errs = append(q.errs, f)
	} else {
		q.errs[q.errOff] = f
		q.errOff = (q.errOff + 1) % q.cfg.ErrorCap
	}
	q.stats.Nacked++
	q.mu.Unlock()
	q.cfg.Metrics.Inc("rbay_ingest_nacked_total")
}

func (q *Queue) noteApplied(raw int) {
	q.mu.Lock()
	q.stats.Applied += uint64(raw)
	q.mu.Unlock()
	q.cfg.Metrics.Add("rbay_ingest_applied_total", uint64(raw))
}

// Depth returns the current queued-entry count.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.q)
}

// Errors returns the error queue's contents, oldest first.
func (q *Queue) Errors() []Failed {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Failed, 0, len(q.errs))
	out = append(out, q.errs[q.errOff:]...)
	out = append(out, q.errs[:q.errOff]...)
	return out
}

// QueueStats returns a snapshot of the queue's counters.
func (q *Queue) QueueStats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.Depth = len(q.q)
	s.MaxDepth = q.maxDepth
	return s
}

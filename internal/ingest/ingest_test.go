package ingest

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"rbay/internal/metrics"
)

func newTestQueue(cfg Config) *Queue {
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	return NewQueue(cfg)
}

func drainAll(q *Queue) []*Apply {
	var out []*Apply
	for {
		applies, raw := q.DrainBatch()
		if raw == 0 {
			return out
		}
		out = append(out, applies...)
	}
}

func TestCoalescingLastWriteWins(t *testing.T) {
	q := newTestQueue(Config{})
	for i := 0; i < 5; i++ {
		if err := q.Enqueue("cpu", float64(i), "test", nil); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	if err := q.Enqueue("mem", 0.5, "test", nil); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	applies, raw := q.DrainBatch()
	if raw != 6 {
		t.Fatalf("raw = %d, want 6", raw)
	}
	if len(applies) != 2 {
		t.Fatalf("applies = %d, want 2 (cpu coalesced)", len(applies))
	}
	// First-occurrence order preserved; cpu carries the last value.
	if applies[0].Name != "cpu" || applies[1].Name != "mem" {
		t.Fatalf("order = %s,%s, want cpu,mem", applies[0].Name, applies[1].Name)
	}
	if got := applies[0].Value.(float64); got != 4 {
		t.Fatalf("cpu value = %v, want 4 (last write wins)", got)
	}
	if applies[0].Raw != 5 {
		t.Fatalf("cpu raw = %d, want 5", applies[0].Raw)
	}
	st := q.QueueStats()
	if st.Coalesced != 4 {
		t.Fatalf("coalesced = %d, want 4", st.Coalesced)
	}
	if st.Depth != 0 {
		t.Fatalf("depth = %d, want 0 after drain", st.Depth)
	}
}

func TestAckFiresOncePerProducer(t *testing.T) {
	q := newTestQueue(Config{})
	acks := 0
	var got error
	for i := 0; i < 3; i++ {
		q.Enqueue("cpu", i, "test", func(err error) { acks++; got = err })
	}
	applies, _ := q.DrainBatch()
	if len(applies) != 1 {
		t.Fatalf("applies = %d, want 1", len(applies))
	}
	if acks != 0 {
		t.Fatalf("acks fired before apply: %d", acks)
	}
	applies[0].Ack()
	if acks != 3 || got != nil {
		t.Fatalf("acks = %d (err %v), want 3 nil acks — coalesced producers all learn their key landed", acks, got)
	}
	if st := q.QueueStats(); st.Applied != 3 {
		t.Fatalf("applied = %d, want 3 raw updates", st.Applied)
	}
}

func TestValidationNackToErrorQueue(t *testing.T) {
	q := newTestQueue(Config{})
	var ackErr error
	err := q.Enqueue("", 1.0, "gw", func(e error) { ackErr = e })
	if !errors.Is(err, ErrEmptyName) {
		t.Fatalf("err = %v, want ErrEmptyName", err)
	}
	if ackErr == nil {
		t.Fatal("ack not fired with rejection error")
	}
	if err := q.Enqueue("bad", map[string]int{"x": 1}, "gw", nil); err == nil {
		t.Fatal("unsupported value type accepted")
	}
	if q.Depth() != 0 {
		t.Fatalf("depth = %d, rejected updates must not be queued", q.Depth())
	}
	errs := q.Errors()
	if len(errs) != 2 {
		t.Fatalf("error queue = %d entries, want 2", len(errs))
	}
	if errs[0].Name != "" || errs[1].Name != "bad" {
		t.Fatalf("error queue order wrong: %+v", errs)
	}
	if st := q.QueueStats(); st.Nacked != 2 {
		t.Fatalf("nacked = %d, want 2", st.Nacked)
	}
}

func TestNackDrainedApply(t *testing.T) {
	q := newTestQueue(Config{})
	var ackErr error
	q.Enqueue("quarantined", 1.0, "test", func(e error) { ackErr = e })
	applies, _ := q.DrainBatch()
	q.Nack(applies[0], "attribute quarantined")
	if ackErr == nil || ackErr.Error() != "attribute quarantined" {
		t.Fatalf("ack err = %v, want quarantine reason", ackErr)
	}
	errs := q.Errors()
	if len(errs) != 1 || errs[0].Reason != "attribute quarantined" {
		t.Fatalf("error queue = %+v", errs)
	}
}

func TestErrorQueueRingBounded(t *testing.T) {
	q := newTestQueue(Config{ErrorCap: 4})
	for i := 0; i < 10; i++ {
		q.Enqueue(fmt.Sprintf("k%d", i), struct{}{}, "test", nil)
	}
	errs := q.Errors()
	if len(errs) != 4 {
		t.Fatalf("error queue = %d, want capped at 4", len(errs))
	}
	// Oldest-first: entries 6..9 survive.
	for i, f := range errs {
		if want := fmt.Sprintf("k%d", i+6); f.Name != want {
			t.Fatalf("errs[%d] = %q, want %q", i, f.Name, want)
		}
	}
}

func TestBackpressureShedsToSampling(t *testing.T) {
	q := newTestQueue(Config{HighWater: 8})
	// Fill to the high-water mark with distinct keys.
	for i := 0; i < 8; i++ {
		q.Enqueue(fmt.Sprintf("k%d", i), 0.0, "test", nil)
	}
	// Burst: repeated writes to queued keys must sample in place, not grow
	// the queue.
	for round := 1; round <= 10; round++ {
		for i := 0; i < 8; i++ {
			q.Enqueue(fmt.Sprintf("k%d", i), float64(round), "test", nil)
		}
	}
	st := q.QueueStats()
	if st.Depth != 8 {
		t.Fatalf("depth = %d, want 8 (bounded by sampling)", st.Depth)
	}
	if st.Shed != 80 {
		t.Fatalf("shed = %d, want 80", st.Shed)
	}
	// New keys are still admitted above high water (a key's only pending
	// value is never dropped).
	q.Enqueue("fresh", 1.0, "test", nil)
	if d := q.Depth(); d != 9 {
		t.Fatalf("depth = %d, want 9 — new key admitted", d)
	}
	applies := drainAll(q)
	if len(applies) != 9 {
		t.Fatalf("applies = %d, want 9", len(applies))
	}
	// Sampled keys carry the latest burst value.
	for _, a := range applies[:8] {
		if got := a.Value.(float64); got != 10 {
			t.Fatalf("%s = %v, want 10 (keep-latest sampling)", a.Name, got)
		}
	}
}

func TestWakeOnEmptyToNonEmpty(t *testing.T) {
	wakes := 0
	q := newTestQueue(Config{Wake: func() { wakes++ }})
	q.Enqueue("a", 1.0, "test", nil)
	q.Enqueue("b", 2.0, "test", nil)
	if wakes != 1 {
		t.Fatalf("wakes = %d, want 1 (only the empty→non-empty edge)", wakes)
	}
	drainAll(q)
	q.Enqueue("c", 3.0, "test", nil)
	if wakes != 2 {
		t.Fatalf("wakes = %d, want 2 after drain", wakes)
	}
}

func TestDrainBatchSizeBound(t *testing.T) {
	q := newTestQueue(Config{BatchSize: 4})
	for i := 0; i < 10; i++ {
		q.Enqueue(fmt.Sprintf("k%d", i), i, "test", nil)
	}
	applies, raw := q.DrainBatch()
	if raw != 4 || len(applies) != 4 {
		t.Fatalf("first drain = %d applies / %d raw, want 4/4", len(applies), raw)
	}
	if q.Depth() != 6 {
		t.Fatalf("depth = %d, want 6", q.Depth())
	}
	rest := drainAll(q)
	if len(rest) != 6 {
		t.Fatalf("rest = %d, want 6", len(rest))
	}
}

func TestStalenessClock(t *testing.T) {
	now := time.Unix(1000, 0)
	q := newTestQueue(Config{Now: func() time.Time { return now }})
	q.Enqueue("a", 1.0, "test", nil)
	now = now.Add(3 * time.Second)
	q.Enqueue("a", 2.0, "test", nil)
	applies, _ := q.DrainBatch()
	if got := applies[0].At; !got.Equal(time.Unix(1003, 0)) {
		t.Fatalf("At = %v, want the newest subsumed update's enqueue time", got)
	}
}

// Package fedcfg loads the two configuration files real deployments share
// between rbayd daemons and rbayctl clients: the federation's tree
// registry (JSON) and the peer table mapping node addresses to TCP
// host:ports.
package fedcfg

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"rbay/internal/naming"
	"rbay/internal/transport"
)

// RegistryFile is the on-disk JSON shape of a tree catalog.
type RegistryFile struct {
	Trees []TreeEntry       `json:"trees"`
	Links map[string]string `json:"links,omitempty"`
}

// TreeEntry declares one tree.
type TreeEntry struct {
	Name    string `json:"name"`
	Attr    string `json:"attr"`
	Op      string `json:"op"`
	Value   any    `json:"value"`
	Parent  string `json:"parent,omitempty"`
	Creator string `json:"creator,omitempty"`
}

// LoadRegistry reads a JSON registry file.
func LoadRegistry(path string) (*naming.Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fedcfg: %w", err)
	}
	return ParseRegistry(data)
}

// ParseRegistry decodes registry JSON.
func ParseRegistry(data []byte) (*naming.Registry, error) {
	var rf RegistryFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return nil, fmt.Errorf("fedcfg: registry: %w", err)
	}
	reg := naming.NewRegistry()
	// Trees may appear in any order in the file; parents must be defined
	// first, so insert to a fixpoint and report whatever remains (cycles
	// or dangling parents).
	pending := append([]TreeEntry(nil), rf.Trees...)
	for len(pending) > 0 {
		progressed := false
		var next []TreeEntry
		var lastErr error
		for _, t := range pending {
			op := naming.Op(t.Op)
			switch op {
			case naming.OpEq, naming.OpNe, naming.OpLt, naming.OpLe, naming.OpGt, naming.OpGe:
			default:
				return nil, fmt.Errorf("fedcfg: tree %q: unknown op %q", t.Name, t.Op)
			}
			creator := t.Creator
			if creator == "" {
				creator = "rbay"
			}
			err := reg.Define(naming.TreeDef{
				Name:    t.Name,
				Pred:    naming.Pred{Attr: t.Attr, Op: op, Value: t.Value},
				Parent:  t.Parent,
				Creator: creator,
			})
			if err != nil {
				if t.Parent != "" {
					if _, defined := reg.Lookup(t.Parent); !defined {
						// Parent not inserted yet: retry next round.
						next = append(next, t)
						lastErr = err
						continue
					}
				}
				return nil, err
			}
			progressed = true
		}
		if !progressed {
			return nil, lastErr
		}
		pending = next
	}
	for attrName, tree := range rf.Links {
		if err := reg.LinkProperty(attrName, tree); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// MarshalRegistry renders a registry back to its JSON file format, so
// catalogs built in code (e.g. the EC2 evaluation catalog) can be written
// out for rbayd deployments.
func MarshalRegistry(reg *naming.Registry) ([]byte, error) {
	var rf RegistryFile
	for _, d := range reg.Defs() {
		rf.Trees = append(rf.Trees, TreeEntry{
			Name:    d.Name,
			Attr:    d.Pred.Attr,
			Op:      string(d.Pred.Op),
			Value:   d.Pred.Value,
			Parent:  d.Parent,
			Creator: d.Creator,
		})
	}
	if links := reg.Links(); len(links) > 0 {
		rf.Links = links
	}
	return json.MarshalIndent(&rf, "", "  ")
}

// LoadPeers reads a peer table: one "site/host tcp-host:port" pair per
// line; '#' starts a comment.
func LoadPeers(path string) (map[transport.Addr]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fedcfg: %w", err)
	}
	defer f.Close()
	table := make(map[transport.Addr]string)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("fedcfg: %s:%d: want 'site/host host:port'", path, lineNo)
		}
		addr, err := ParseAddr(fields[0])
		if err != nil {
			return nil, fmt.Errorf("fedcfg: %s:%d: %w", path, lineNo, err)
		}
		table[addr] = fields[1]
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fedcfg: %w", err)
	}
	return table, nil
}

// ParseAddr parses "site/host".
func ParseAddr(s string) (transport.Addr, error) {
	site, host, ok := strings.Cut(s, "/")
	if !ok || site == "" || host == "" {
		return transport.Addr{}, fmt.Errorf("malformed node address %q (want site/host)", s)
	}
	return transport.Addr{Site: site, Host: host}, nil
}

// ParseAttrValue interprets a command-line attribute value: true/false,
// a number, or a string.
func ParseAttrValue(s string) any {
	switch s {
	case "true":
		return true
	case "false":
		return false
	}
	var f float64
	if _, err := fmt.Sscanf(s, "%g", &f); err == nil && fmt.Sprintf("%g", f) == s {
		return f
	}
	return s
}

package fedcfg

import (
	"os"
	"path/filepath"
	"testing"

	"rbay/internal/naming"
	"rbay/internal/transport"
)

func TestParseRegistry(t *testing.T) {
	data := []byte(`{
		"trees": [
			{"name": "brand=Intel", "attr": "CPU_brand", "op": "=", "value": "Intel"},
			{"name": "model=i7", "attr": "CPU_model", "op": "=", "value": "Intel Core i7", "parent": "brand=Intel"},
			{"name": "util<10%", "attr": "CPU_utilization", "op": "<", "value": 0.10},
			{"name": "GPU", "attr": "GPU", "op": "=", "value": true, "creator": "grace"}
		],
		"links": {"year_of_manufacture": "model=i7"}
	}`)
	reg, err := ParseRegistry(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Defs()) != 4 {
		t.Fatalf("trees = %d", len(reg.Defs()))
	}
	d, ok := reg.Lookup("model=i7")
	if !ok || d.Parent != "brand=Intel" {
		t.Fatalf("model tree: %+v", d)
	}
	if d, _ := reg.Lookup("util<10%"); d.Pred.Value != 0.10 {
		t.Fatalf("numeric value: %v", d.Pred.Value)
	}
	if d, _ := reg.Lookup("GPU"); d.Pred.Value != true || d.Creator != "grace" {
		t.Fatalf("bool value / creator: %+v", d)
	}
	// The link plans queries on the linked attribute.
	def, exact := reg.PlanPredicate(naming.Pred{Attr: "year_of_manufacture", Op: naming.OpGe, Value: 2015.0})
	if def == nil || exact || def.Name != "model=i7" {
		t.Fatalf("link planning: %v exact=%v", def, exact)
	}
}

func TestParseRegistryErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"trees": [{"name": "x", "attr": "a", "op": "~", "value": 1}]}`,
		`{"trees": [{"name": "x", "attr": "a", "op": "=", "value": 1, "parent": "ghost"}]}`,
		`{"trees": [], "links": {"a": "ghost"}}`,
	}
	for _, c := range cases {
		if _, err := ParseRegistry([]byte(c)); err == nil {
			t.Errorf("ParseRegistry(%q): expected error", c)
		}
	}
}

func TestLoadPeers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "peers.txt")
	content := `# comment
virginia/n1 10.0.0.5:7946

tokyo/n1    192.168.1.9:7946
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	peers, err := LoadPeers(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 {
		t.Fatalf("peers = %d", len(peers))
	}
	if peers[transport.Addr{Site: "virginia", Host: "n1"}] != "10.0.0.5:7946" {
		t.Errorf("virginia entry: %v", peers)
	}
	if peers[transport.Addr{Site: "tokyo", Host: "n1"}] != "192.168.1.9:7946" {
		t.Errorf("tokyo entry: %v", peers)
	}
}

func TestLoadPeersErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("too many fields here\n"), 0o644)
	if _, err := LoadPeers(bad); err == nil {
		t.Error("malformed line accepted")
	}
	noslash := filepath.Join(dir, "noslash.txt")
	os.WriteFile(noslash, []byte("hostonly 1.2.3.4:1\n"), 0o644)
	if _, err := LoadPeers(noslash); err == nil {
		t.Error("address without site accepted")
	}
	if _, err := LoadPeers(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParseAddr(t *testing.T) {
	a, err := ParseAddr("virginia/n3")
	if err != nil || a.Site != "virginia" || a.Host != "n3" {
		t.Fatalf("ParseAddr: %v %v", a, err)
	}
	for _, bad := range []string{"", "nohost", "/x", "x/"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q): expected error", bad)
		}
	}
}

func TestParseAttrValue(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{"true", true},
		{"false", false},
		{"3.5", 3.5},
		{"42", 42.0},
		{"c3.8xlarge", "c3.8xlarge"}, // not a number despite digits
		{"9.0", "9.0"},               // trailing zero preserved as string (version numbers)
		{"hello", "hello"},
	}
	for _, c := range cases {
		if got := ParseAttrValue(c.in); got != c.want {
			t.Errorf("ParseAttrValue(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestMarshalRegistryRoundTrip(t *testing.T) {
	reg := naming.NewRegistry()
	reg.MustDefine(naming.TreeDef{Name: "brand=Intel", Pred: naming.Pred{Attr: "CPU_brand", Op: naming.OpEq, Value: "Intel"}, Creator: "a"})
	reg.MustDefine(naming.TreeDef{Name: "util<10%", Pred: naming.Pred{Attr: "u", Op: naming.OpLt, Value: 0.1}, Creator: "a"})
	reg.MustDefine(naming.TreeDef{Name: "model=i7", Pred: naming.Pred{Attr: "m", Op: naming.OpEq, Value: "i7"}, Parent: "brand=Intel", Creator: "b"})
	if err := reg.LinkProperty("year", "model=i7"); err != nil {
		t.Fatal(err)
	}
	data, err := MarshalRegistry(reg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseRegistry(data)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, data)
	}
	if len(back.Defs()) != 3 {
		t.Fatalf("trees = %d", len(back.Defs()))
	}
	d, ok := back.Lookup("model=i7")
	if !ok || d.Parent != "brand=Intel" || d.Creator != "b" {
		t.Fatalf("model: %+v", d)
	}
	if back.Links()["year"] != "model=i7" {
		t.Fatalf("links = %v", back.Links())
	}
	// A marshaled registry with a child listed before its parent must
	// still load: Defs() sorts by name, so verify ordering robustness.
	if _, err := ParseRegistry(data); err != nil {
		t.Fatal(err)
	}
}

func TestParseRegistryChildBeforeParent(t *testing.T) {
	data := []byte(`{"trees": [
		{"name": "a-child", "attr": "m", "op": "=", "value": "i7", "parent": "z-parent"},
		{"name": "z-parent", "attr": "b", "op": "=", "value": "Intel"}
	]}`)
	reg, err := ParseRegistry(data)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := reg.Lookup("a-child"); !ok || d.Parent != "z-parent" {
		t.Fatalf("child: %+v ok=%v", d, ok)
	}
	// Truly dangling parents still fail.
	if _, err := ParseRegistry([]byte(`{"trees": [
		{"name": "x", "attr": "a", "op": "=", "value": 1, "parent": "ghost"}
	]}`)); err == nil {
		t.Fatal("dangling parent accepted")
	}
}

// WAL codec and group-commit benchmarks (docs/RECOVERY.md): the binary
// frame encoder against the legacy JSON path, and fsync coalescing under
// concurrent appenders. Run with
//
//	make bench-wal
//
// BenchmarkWALAppendJSON/Binary isolate encode+buffer cost (SyncNever on
// an in-memory dir), so the ratio between them is the pure codec win.
// BenchmarkWALGroupCommit measures the durable path: every append blocks
// until its group's fsync, so ns/op includes the (simulated) flush and
// the reported fsyncs/op shows the coalescing factor.
package rbay_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rbay/internal/metrics"
	"rbay/internal/store"
)

// walWorkload is one representative cycle of the durable hot paths:
// scalar sets across the tagged-value kinds, a batched churn flush, a
// delete, and a lease reserve/commit pair — the same mix the churn
// pipeline and ops engine write in production. All inputs are built
// outside the timed loop so the benchmark isolates the append path
// (encode + buffer) rather than the caller's own allocations.
type walWorkload struct {
	loads []any // pre-boxed float64 values
	hosts []any // pre-boxed hostname strings
	batch [][]store.BatchSet
	exp   time.Time
}

func newWALWorkload() *walWorkload {
	w := &walWorkload{exp: time.Unix(1700000000, 0)}
	for i := 0; i < 100; i++ {
		w.loads = append(w.loads, float64(i)/100)
	}
	for i := 0; i < 64; i++ {
		w.hosts = append(w.hosts, fmt.Sprintf("node-%d.site", i))
	}
	for i := 0; i < 16; i++ {
		kvs := make([]store.BatchSet, 8)
		for j := range kvs {
			kvs[j] = store.BatchSet{Name: fmt.Sprintf("disk%d_free", j), Value: float64((i + j) % 512)}
		}
		w.batch = append(w.batch, kvs)
	}
	return w
}

func (w *walWorkload) run(l *store.Log, i int) {
	l.RecordSet("cpu_load", w.loads[i%len(w.loads)])
	l.RecordSet("hostname", w.hosts[i%len(w.hosts)])
	l.RecordSet("gpu", i%2 == 0)
	l.RecordSetBatch(w.batch[i%len(w.batch)])
	l.RecordDelete("scratch")
	l.RecordReserve("bench-query", w.exp)
	l.RecordCommit("bench-query")
}

func benchWALAppend(b *testing.B, format store.Format) {
	l, _, err := store.Open(store.NewMemDir(), store.Options{
		Policy:       store.SyncNever,
		Format:       format,
		CompactEvery: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	w := newWALWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.run(l, i)
	}
}

func BenchmarkWALAppendJSON(b *testing.B)   { benchWALAppend(b, store.FormatJSON) }
func BenchmarkWALAppendBinary(b *testing.B) { benchWALAppend(b, store.FormatBinary) }

// BenchmarkWALGroupCommit: N goroutines append concurrently under
// -fsync=group; each op is one durably-acked RecordSet. fsyncs/op < 1
// means the writer coalesced multiple appenders' frames into one flush.
func BenchmarkWALGroupCommit(b *testing.B) {
	for _, appenders := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("appenders-%d", appenders), func(b *testing.B) {
			reg := metrics.NewRegistry()
			l, _, err := store.Open(store.NewMemDir(), store.Options{
				Policy:       store.SyncGroup,
				GroupWindow:  50 * time.Microsecond,
				CompactEvery: 1 << 30,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			l.SetMetrics(reg)

			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / appenders
			extra := b.N % appenders
			for g := 0; g < appenders; g++ {
				n := per
				if g < extra {
					n++
				}
				wg.Add(1)
				go func(g, n int) {
					defer wg.Done()
					name := fmt.Sprintf("load%d", g)
					for i := 0; i < n; i++ {
						l.RecordSet(name, float64(i))
					}
				}(g, n)
			}
			wg.Wait()
			b.StopTimer()
			if fs := reg.Counter("rbay_wal_fsync_total"); fs > 0 {
				b.ReportMetric(float64(fs)/float64(b.N), "fsyncs/op")
			}
		})
	}
}

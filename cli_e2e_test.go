package rbay_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCLIEndToEnd builds the real binaries, brings up a two-node rbayd
// federation on loopback, and exercises rbayctl and rbayaal against it —
// the full deployment path a site admin would walk.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns binaries")
	}
	dir := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = "."
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		return out
	}
	rbayd := build("rbayd")
	rbayctl := build("rbayctl")
	rbayaal := build("rbayaal")

	// Reserve three loopback ports.
	ports := make([]string, 3)
	for i := range ports {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = l.Addr().String()
		l.Close()
	}
	peers := filepath.Join(dir, "peers.txt")
	peersContent := fmt.Sprintf("lab/n1 %s\nlab/n2 %s\nlab/ctl %s\n", ports[0], ports[1], ports[2])
	if err := os.WriteFile(peers, []byte(peersContent), 0o644); err != nil {
		t.Fatal(err)
	}
	registry := filepath.Join(dir, "registry.json")
	regContent := `{"trees": [{"name": "GPU", "attr": "GPU", "op": "=", "value": true}]}`
	if err := os.WriteFile(registry, []byte(regContent), 0o644); err != nil {
		t.Fatal(err)
	}
	policy := filepath.Join(dir, "password.aal")
	policyContent := `
AA = {Password = "pw"}
function onGet(caller, password)
    if password == AA.Password then return NodeId end
    return nil
end
`
	if err := os.WriteFile(policy, []byte(policyContent), 0o644); err != nil {
		t.Fatal(err)
	}

	// Policy workbench first (no network needed).
	out, err := exec.Command(rbayaal, "-invoke", "onGet", "-args", "joe,pw", policy).CombinedOutput()
	if err != nil {
		t.Fatalf("rbayaal: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), `-> "lab/n1"`) {
		t.Fatalf("rbayaal output: %s", out)
	}

	// Daemons.
	spawn := func(args ...string) *exec.Cmd {
		cmd := exec.Command(rbayd, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		})
		return cmd
	}
	spawn("-addr", "lab/n1", "-listen", ports[0], "-peers", peers, "-registry", registry,
		"-bootstrap", "-attr", "GPU=true")
	waitListening(t, ports[0])
	spawn("-addr", "lab/n2", "-listen", ports[1], "-peers", peers, "-registry", registry,
		"-seed", "lab/n1", "-attr", "GPU=true", "-policy", "GPU="+policy)
	waitListening(t, ports[1])

	// The trees need a couple of aggregation intervals; retry the query
	// until both GPUs show up (n2's requires the password).
	deadline := time.Now().Add(60 * time.Second)
	var lastOut []byte
	for time.Now().Before(deadline) {
		cmd := exec.Command(rbayctl,
			"-addr", "lab/ctl", "-listen", ports[2], "-peers", peers, "-registry", registry,
			"-seed", "lab/n1", "-password", "pw", "-timeout", "20s",
			"query", "SELECT * FROM lab WHERE GPU = true;")
		lastOut, err = cmd.CombinedOutput()
		if err == nil && strings.Contains(string(lastOut), "2 candidate(s)") {
			return // success
		}
		time.Sleep(2 * time.Second)
	}
	t.Fatalf("rbayctl never saw both GPUs; last output:\n%s (err=%v)", lastOut, err)
}

// TestCLIDurableRestart walks the full crash-recovery path over real TCP:
// a daemon posts its inventory into a -data-dir store, leaves gracefully
// on SIGTERM, and is restarted with no -attr/-policy flags at all — every
// attribute and the password policy must come back from the WAL replay,
// and the revived node must re-federate until queries find it again.
func TestCLIDurableRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns binaries")
	}
	dir := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = "."
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		return out
	}
	rbayd := build("rbayd")
	rbayctl := build("rbayctl")

	ports := make([]string, 3)
	for i := range ports {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = l.Addr().String()
		l.Close()
	}
	peers := filepath.Join(dir, "peers.txt")
	peersContent := fmt.Sprintf("lab/n1 %s\nlab/n2 %s\nlab/ctl %s\n", ports[0], ports[1], ports[2])
	if err := os.WriteFile(peers, []byte(peersContent), 0o644); err != nil {
		t.Fatal(err)
	}
	registry := filepath.Join(dir, "registry.json")
	regContent := `{"trees": [{"name": "GPU", "attr": "GPU", "op": "=", "value": true}]}`
	if err := os.WriteFile(registry, []byte(regContent), 0o644); err != nil {
		t.Fatal(err)
	}
	policy := filepath.Join(dir, "password.aal")
	policyContent := `
AA = {Password = "pw"}
function onGet(caller, password)
    if password == AA.Password then return NodeId end
    return nil
end
`
	if err := os.WriteFile(policy, []byte(policyContent), 0o644); err != nil {
		t.Fatal(err)
	}

	spawn := func(args ...string) *exec.Cmd {
		cmd := exec.Command(rbayd, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		})
		return cmd
	}
	queryN := func(what string, want int) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		wanted := fmt.Sprintf("%d candidate(s)", want)
		var lastOut []byte
		var err error
		for time.Now().Before(deadline) {
			cmd := exec.Command(rbayctl,
				"-addr", "lab/ctl", "-listen", ports[2], "-peers", peers, "-registry", registry,
				"-seed", "lab/n1", "-password", "pw", "-timeout", "20s",
				"query", "SELECT * FROM lab WHERE GPU = true;")
			lastOut, err = cmd.CombinedOutput()
			if err == nil && strings.Contains(string(lastOut), wanted) {
				return
			}
			time.Sleep(2 * time.Second)
		}
		t.Fatalf("%s: rbayctl never saw %d GPU(s); last output:\n%s (err=%v)", what, want, lastOut, err)
	}

	gwAddr := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		a := l.Addr().String()
		l.Close()
		return a
	}()
	gwURL := "http://" + gwAddr
	gwCtl := func(args ...string) (string, error) {
		all := append([]string{"-gw", gwURL, "-timeout", "60s", "-password", "pw"}, args...)
		out, err := exec.Command(rbayctl, all...).CombinedOutput()
		return string(out), err
	}
	// "op <id> accepted" / "op <id> already submitted ..." / "op <id>: ..."
	opID := func(out string) string {
		t.Helper()
		fields := strings.Fields(out)
		for i, f := range fields {
			if f == "op" && i+1 < len(fields) {
				return strings.TrimSuffix(fields[i+1], ":")
			}
		}
		t.Fatalf("no op ID in output:\n%s", out)
		return ""
	}

	n1Dir, n2Dir := filepath.Join(dir, "n1-data"), filepath.Join(dir, "n2-data")
	spawn("-addr", "lab/n1", "-listen", ports[0], "-peers", peers, "-registry", registry,
		"-bootstrap", "-data-dir", n1Dir, "-attr", "GPU=true")
	waitListening(t, ports[0])
	n2Args := []string{"-addr", "lab/n2", "-listen", ports[1], "-peers", peers, "-registry", registry,
		"-seed", "lab/n1", "-data-dir", n2Dir, "-fsync", "always", "-http", gwAddr}
	n2 := spawn(append(n2Args, "-attr", "GPU=true", "-policy", "GPU="+policy)...)
	waitListening(t, ports[1])
	queryN("before restart", 2)

	// The probe query above left uncommitted holds on both nodes; wait
	// out the ReserveTTL (5s default) so the gateway reserve below finds
	// free inventory.
	time.Sleep(7 * time.Second)

	// Async gateway round under an idempotency key: reserve one GPU and
	// commit it, both driven to terminal state through GET /ops polling.
	out, err := gwCtl("-idem", "e2e-ticket", "-tenant", "e2e", "-wait",
		"reserve", "SELECT 1 FROM lab WHERE GPU = true;")
	if err != nil {
		t.Fatalf("gateway reserve: %v\n%s", err, out)
	}
	if !strings.Contains(out, "site=lab") {
		t.Fatalf("gateway reserve returned no candidates:\n%s", out)
	}
	reserveID := opID(out)
	out, err = gwCtl("-wait", "commit", reserveID)
	if err != nil {
		t.Fatalf("gateway commit: %v\n%s", err, out)
	}

	// Graceful departure, then revive from disk alone: no -attr, no
	// -policy — if the WAL didn't capture the inventory, the query below
	// can never find the surviving candidate again.
	if err := n2.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- n2.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("n2 graceful shutdown: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("n2 did not exit on SIGINT")
	}
	spawn(n2Args...)
	waitListening(t, ports[1])
	waitListening(t, gwAddr)

	// Resubmitting the reserve under the same idempotency key must hit
	// the WAL-restored op record — same op ID, no second reservation.
	out, err = gwCtl("-idem", "e2e-ticket", "-tenant", "e2e",
		"reserve", "SELECT 1 FROM lab WHERE GPU = true;")
	if err != nil {
		t.Fatalf("gateway reserve replay: %v\n%s", err, out)
	}
	if !strings.Contains(out, "already submitted") {
		t.Fatalf("replayed key not deduped after restart:\n%s", out)
	}
	if got := opID(out); got != reserveID {
		t.Fatalf("replayed key mapped to op %s, want %s", got, reserveID)
	}

	// Exactly one reservation: one of the two GPUs stays committed, so a
	// fresh query finds exactly one free candidate after refederation.
	queryN("after restart", 1)
}

func waitListening(t *testing.T, hostport string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", hostport, time.Second)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("nothing listening on %s", hostport)
}

# Tier-1 gate: everything a PR must keep green. `make ci` is what the
# README documents and what reviewers run.

GO ?= go

.PHONY: ci vet build test race bench bench-all bench-baseline chaos

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -shuffle=on randomizes test order (seed printed on failure) so hidden
# inter-test state dependencies surface in CI instead of on laptops.
race:
	$(GO) test -race -shuffle=on ./...

# Seeded fault-injection campaign against the simulated federation; see
# docs/TESTING.md. Override with e.g. `make chaos CHAOS_SEED=7`.
CHAOS_SEED ?= 1
CHAOS_STEPS ?= 100
chaos:
	$(GO) run ./cmd/rbaysim chaos -seed $(CHAOS_SEED) -steps $(CHAOS_STEPS)

# Query/scribe hot-path benchmarks (probe, anycast, cross-site, parser).
# BENCH_seed.json was produced from this set via `make bench-baseline`;
# compare against it before landing perf-sensitive changes.
BENCH_PATTERN ?= 'Query|Probe|Parse|Bootstrap'
bench:
	$(GO) test -bench $(BENCH_PATTERN) -benchtime 1x -benchmem -run '^$$' .

bench-all:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

bench-baseline:
	$(GO) test -bench $(BENCH_PATTERN) -benchtime 1x -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson > BENCH_seed.json

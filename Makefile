# Tier-1 gate: everything a PR must keep green. `make ci` is what the
# README documents and what reviewers run.

GO ?= go

.PHONY: ci vet fmt-check build test race bench bench-all bench-baseline bench-diff bench-smoke bench-scale bench-churn bench-wal fuzz-store fuzz-store-smoke chaos chaos-restart-smoke chaos-replica-smoke churn-smoke gateway-smoke

ci: fmt-check vet build race chaos-restart-smoke chaos-replica-smoke churn-smoke gateway-smoke fuzz-store-smoke bench-smoke

vet:
	$(GO) vet ./...

# gofmt -l prints unformatted files; grep inverts that into a pass/fail.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -shuffle=on randomizes test order (seed printed on failure) so hidden
# inter-test state dependencies surface in CI instead of on laptops.
race:
	$(GO) test -race -shuffle=on ./...

# Seeded fault-injection campaign against the simulated federation; see
# docs/TESTING.md. Override with e.g. `make chaos CHAOS_SEED=7`. Add
# CHAOS_FLAGS='-durable' to back nodes with crash-consistent disks and arm
# the durability invariant (docs/RECOVERY.md).
CHAOS_SEED ?= 1
CHAOS_STEPS ?= 100
CHAOS_FLAGS ?=
chaos:
	$(GO) run ./cmd/rbaysim chaos -seed $(CHAOS_SEED) -steps $(CHAOS_STEPS) $(CHAOS_FLAGS)

# Fast deterministic crash/restart-with-disk gate: disk-backed nodes must
# recover by WAL replay and re-federation under every fsync policy,
# including a torn commit record and a corrupt WAL tail.
chaos-restart-smoke:
	$(GO) test -short -count=1 \
		-run 'TestDurableRestartSmoke|TestCrashMidCommitLeaseReArmed|TestCorruptWALTailRestartRecovers' \
		./internal/chaos/

# Seeded root-replication/view gate: crashing a Scribe tree root must
# promote a leaf-set replica without a subtree re-join storm, and
# materialized views must converge to the tree-walk answer afterwards
# (docs/VIEWS.md).
chaos-replica-smoke:
	$(GO) test -short -count=1 \
		-run 'TestRootCrashReplicaPromotes|TestRootCrashCampaign|TestViewPropertyIncrementalMatchesScratch' \
		./internal/chaos/ ./internal/core/

# Churn-ingestion gate (part of `make ci`): bounded queue depth with sheds
# counted under a burst, zero WAL frames for unchanged re-posts, and
# batched ingest beating the per-Set path on frames per update
# (docs/INGEST.md).
churn-smoke:
	$(GO) test -short -count=1 -run 'TestChurnSmoke' .

# Async-gateway gate (part of `make ci`): a 50-seed crash campaign must
# leave zero orphaned reservations (every committed lease maps to a done
# commit op), a burst at 4x the per-tenant rate limit must shed with 429s
# while accepted-op latency stays bounded, and idempotency keys must
# dedupe concurrent and replayed submissions (docs/GATEWAY.md).
gateway-smoke:
	$(GO) test -short -count=1 \
		-run 'TestGatewayCrashSmoke|TestGatewayCrashCampaign' ./internal/chaos/
	$(GO) test -short -count=1 \
		-run 'TestGatewayBurstShed|TestGatewayQueueFullSheds|TestGatewayIdempotencyKey' ./internal/httpgw/
	$(GO) test -short -count=1 \
		-run 'TestIdempotencyKeyDedupesConcurrentSubmits|TestRestoreReplaysIncompleteOps' ./internal/ops/

# Churn pipeline benchmarks: apply throughput with frames/update and
# coalescing ratios, the per-Set baseline they're measured against, and
# staleness/backpressure behavior at 10x churn (docs/INGEST.md).
bench-churn:
	$(GO) test -bench 'BenchmarkChurn' -benchtime 1x -benchmem -run '^$$' .

# WAL codec and group-commit benchmarks: binary vs legacy-JSON frame
# encoding, and fsync coalescing at 1/8/64 concurrent appenders
# (docs/RECOVERY.md).
bench-wal:
	$(GO) test -bench 'BenchmarkWAL' -benchtime 1000x -benchmem -run '^$$' .

# Binary WAL frame decoder fuzzing: torn tails, bit flips, and truncated
# length prefixes must error — never panic or over-allocate. Override
# FUZZ_TIME for longer runs. fuzz-store-smoke is the short `make ci` leg;
# the tight minimize budget keeps interesting-input shrinking from eating
# the wall clock.
FUZZ_TIME ?= 30s
fuzz-store:
	$(GO) test -run '^$$' -fuzz FuzzWALDecode -fuzztime $(FUZZ_TIME) \
		-test.fuzzminimizetime=2s ./internal/store/

fuzz-store-smoke:
	$(MAKE) fuzz-store FUZZ_TIME=5s

# Hot-path benchmarks (probe, anycast, cross-site, parser, WAL append,
# churn apply, ops-engine submit). BENCH_seed.json was produced from this
# set via `make bench-baseline`; compare against it before landing
# perf-sensitive changes. BenchmarkOpsSubmit lives in ./internal/ops, so
# the bench targets run both packages.
BENCH_PATTERN ?= 'Query|Probe|Parse|Bootstrap|Replica|WALAppend|ChurnApply|OpsSubmit'
bench:
	$(GO) test -bench $(BENCH_PATTERN) -benchtime 1x -benchmem -run '^$$' . ./internal/ops/

bench-all:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

bench-baseline:
	$(GO) test -bench $(BENCH_PATTERN) -benchtime 1x -benchmem -run '^$$' . ./internal/ops/ | $(GO) run ./cmd/benchjson > BENCH_seed.json

# Compare a fresh run against the recorded baseline. 3 runs folded to
# their per-metric minimum denoise wall clock (benchjson picks the min).
bench-diff:
	$(GO) test -bench $(BENCH_PATTERN) -benchtime 20x -count 3 -benchmem -run '^$$' . ./internal/ops/ | \
		$(GO) run ./cmd/benchjson -diff BENCH_seed.json

# Perf smoke gate (part of `make ci`): the cross-site query hot path, the
# view-served recurring query, and the binary WAL append path must stay
# within 20% of BENCH_seed.json on ns/op and allocs/op. allocs/op is
# deterministic; ns/op uses the min of 3 runs so scheduler noise doesn't
# flag a phantom regression. The churn apply and group-commit benchmarks
# run alongside for visibility (no baseline gate: their wall clock is
# fsync- and window-bound, not CPU-bound).
bench-smoke:
	$(GO) test -bench 'QueryCrossSite|QueryViewServed|ChurnApply|WALAppend' -benchtime 20x -count 3 -benchmem -run '^$$' . | \
		$(GO) run ./cmd/benchjson -diff BENCH_seed.json -gate 'QueryCrossSite|QueryViewServed|WALAppendBinary' -max-regress 20

# Target-scale wire-codec scenario: 10k nodes / 1M resources with every
# simulated message round-tripped through the binary codec (scale_test.go).
bench-scale:
	RBAY_SCALE=1 $(GO) test -run TestScaleFederation10k -v -timeout 30m .

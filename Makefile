# Tier-1 gate: everything a PR must keep green. `make ci` is what the
# README documents and what reviewers run.

GO ?= go

.PHONY: ci vet fmt-check build test race bench bench-all bench-baseline bench-diff bench-smoke bench-scale bench-churn chaos chaos-restart-smoke chaos-replica-smoke churn-smoke gateway-smoke

ci: fmt-check vet build race chaos-restart-smoke chaos-replica-smoke churn-smoke gateway-smoke bench-smoke

vet:
	$(GO) vet ./...

# gofmt -l prints unformatted files; grep inverts that into a pass/fail.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -shuffle=on randomizes test order (seed printed on failure) so hidden
# inter-test state dependencies surface in CI instead of on laptops.
race:
	$(GO) test -race -shuffle=on ./...

# Seeded fault-injection campaign against the simulated federation; see
# docs/TESTING.md. Override with e.g. `make chaos CHAOS_SEED=7`. Add
# CHAOS_FLAGS='-durable' to back nodes with crash-consistent disks and arm
# the durability invariant (docs/RECOVERY.md).
CHAOS_SEED ?= 1
CHAOS_STEPS ?= 100
CHAOS_FLAGS ?=
chaos:
	$(GO) run ./cmd/rbaysim chaos -seed $(CHAOS_SEED) -steps $(CHAOS_STEPS) $(CHAOS_FLAGS)

# Fast deterministic crash/restart-with-disk gate: disk-backed nodes must
# recover by WAL replay and re-federation under every fsync policy,
# including a torn commit record and a corrupt WAL tail.
chaos-restart-smoke:
	$(GO) test -short -count=1 \
		-run 'TestDurableRestartSmoke|TestCrashMidCommitLeaseReArmed|TestCorruptWALTailRestartRecovers' \
		./internal/chaos/

# Seeded root-replication/view gate: crashing a Scribe tree root must
# promote a leaf-set replica without a subtree re-join storm, and
# materialized views must converge to the tree-walk answer afterwards
# (docs/VIEWS.md).
chaos-replica-smoke:
	$(GO) test -short -count=1 \
		-run 'TestRootCrashReplicaPromotes|TestRootCrashCampaign|TestViewPropertyIncrementalMatchesScratch' \
		./internal/chaos/ ./internal/core/

# Churn-ingestion gate (part of `make ci`): bounded queue depth with sheds
# counted under a burst, zero WAL frames for unchanged re-posts, and
# batched ingest beating the per-Set path on frames per update
# (docs/INGEST.md).
churn-smoke:
	$(GO) test -short -count=1 -run 'TestChurnSmoke' .

# Async-gateway gate (part of `make ci`): a 50-seed crash campaign must
# leave zero orphaned reservations (every committed lease maps to a done
# commit op), a burst at 4x the per-tenant rate limit must shed with 429s
# while accepted-op latency stays bounded, and idempotency keys must
# dedupe concurrent and replayed submissions (docs/GATEWAY.md).
gateway-smoke:
	$(GO) test -short -count=1 \
		-run 'TestGatewayCrashSmoke|TestGatewayCrashCampaign' ./internal/chaos/
	$(GO) test -short -count=1 \
		-run 'TestGatewayBurstShed|TestGatewayQueueFullSheds|TestGatewayIdempotencyKey' ./internal/httpgw/
	$(GO) test -short -count=1 \
		-run 'TestIdempotencyKeyDedupesConcurrentSubmits|TestRestoreReplaysIncompleteOps' ./internal/ops/

# Churn pipeline benchmarks: apply throughput with frames/update and
# coalescing ratios, the per-Set baseline they're measured against, and
# staleness/backpressure behavior at 10x churn (docs/INGEST.md).
bench-churn:
	$(GO) test -bench 'BenchmarkChurn' -benchtime 1x -benchmem -run '^$$' .

# Query/scribe hot-path benchmarks (probe, anycast, cross-site, parser).
# BENCH_seed.json was produced from this set via `make bench-baseline`;
# compare against it before landing perf-sensitive changes.
BENCH_PATTERN ?= 'Query|Probe|Parse|Bootstrap|Replica'
bench:
	$(GO) test -bench $(BENCH_PATTERN) -benchtime 1x -benchmem -run '^$$' .

bench-all:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

bench-baseline:
	$(GO) test -bench $(BENCH_PATTERN) -benchtime 1x -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson > BENCH_seed.json

# Compare a fresh run against the recorded baseline. 3 runs folded to
# their per-metric minimum denoise wall clock (benchjson picks the min).
bench-diff:
	$(GO) test -bench $(BENCH_PATTERN) -benchtime 20x -count 3 -benchmem -run '^$$' . | \
		$(GO) run ./cmd/benchjson -diff BENCH_seed.json

# Perf smoke gate (part of `make ci`): the cross-site query hot path and
# the view-served recurring query must stay within 20% of BENCH_seed.json
# on ns/op and allocs/op. allocs/op is deterministic; ns/op uses the min
# of 3 runs so scheduler noise doesn't flag a phantom regression. The
# churn apply benchmark runs alongside for visibility (no baseline gate).
bench-smoke:
	$(GO) test -bench 'QueryCrossSite|QueryViewServed|ChurnApply' -benchtime 20x -count 3 -benchmem -run '^$$' . | \
		$(GO) run ./cmd/benchjson -diff BENCH_seed.json -gate 'QueryCrossSite|QueryViewServed' -max-regress 20

# Target-scale wire-codec scenario: 10k nodes / 1M resources with every
# simulated message round-tripped through the binary codec (scale_test.go).
bench-scale:
	RBAY_SCALE=1 $(GO) test -run TestScaleFederation10k -v -timeout 30m .

# Tier-1 gate: everything a PR must keep green. `make ci` is what the
# README documents and what reviewers run.

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Tier-1 gate: everything a PR must keep green. `make ci` is what the
# README documents and what reviewers run.

GO ?= go

.PHONY: ci vet build test race bench chaos

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -shuffle=on randomizes test order (seed printed on failure) so hidden
# inter-test state dependencies surface in CI instead of on laptops.
race:
	$(GO) test -race -shuffle=on ./...

# Seeded fault-injection campaign against the simulated federation; see
# docs/TESTING.md. Override with e.g. `make chaos CHAOS_SEED=7`.
CHAOS_SEED ?= 1
CHAOS_STEPS ?= 100
chaos:
	$(GO) run ./cmd/rbaysim chaos -seed $(CHAOS_SEED) -steps $(CHAOS_STEPS)

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

module rbay

go 1.22
